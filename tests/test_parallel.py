"""Tests for the parallel trial-execution subsystem and the runner formats.

The load-bearing property is *determinism*: fanning a batch out over worker
processes must render bit-identical tables to the serial path for the same
seed.  These tests use tiny batches so the pool overhead stays small.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.engine import (
    backend_policy,
    cache_stats,
    clear_pathset_cache,
    normalize_limits,
    pathset_cache,
    select_backend,
)
from repro.exceptions import ExperimentError
from repro.experiments import runner
from repro.experiments.ablation import selector_ablation
from repro.experiments.parallel import (
    TrialSpec,
    resolve_jobs,
    run_trials,
)
from repro.experiments.random_graphs import run_random_graph_cell, run_table6
from repro.experiments.random_monitors import run_random_monitor_experiment
from repro.experiments.truncated import run_truncated_experiment
from repro.topology.zoo import eunetwork_small, getnet
from repro.utils.seeds import spawn_rng, spawn_seed


def _square(value: int) -> int:
    """Module-level so it pickles into pool workers."""
    return value * value


def _seeded_draw(seed: str) -> float:
    return random.Random(seed).random()


def _current_policy(_index: int) -> str:
    return select_backend()


class TestRunTrials:
    def test_empty_batch(self):
        assert run_trials([], jobs=2) == []

    def test_serial_preserves_order(self):
        specs = [TrialSpec(_square, (i,)) for i in range(7)]
        assert run_trials(specs, jobs=1) == [i * i for i in range(7)]

    def test_parallel_matches_serial(self):
        specs = [TrialSpec(_square, (i,)) for i in range(9)]
        assert run_trials(specs, jobs=2) == run_trials(specs, jobs=1)

    def test_seeded_trials_are_schedule_independent(self):
        specs = [TrialSpec(_seeded_draw, (f"seed:{i}",)) for i in range(6)]
        assert run_trials(specs, jobs=3) == run_trials(specs, jobs=1)

    def test_resolve_jobs(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1
        assert resolve_jobs(4) == 4
        assert resolve_jobs(0) >= 1  # all cores
        with pytest.raises(ExperimentError):
            resolve_jobs(-1)

    def test_spec_run_applies_kwargs(self):
        spec = TrialSpec(_square, kwargs={"value": 3}, label="sq")
        assert spec.run() == 9

    def test_backend_override_reaches_serial_and_parallel_trials(self):
        before = select_backend()
        specs = [TrialSpec(_current_policy, (i,)) for i in range(2)]
        assert run_trials(specs, jobs=1, backend="python") == ["python"] * 2
        assert run_trials(specs, jobs=2, backend="python") == ["python"] * 2
        assert select_backend() == before


class TestSeedDerivation:
    def test_spawn_seed_reproduces_spawn_rng(self):
        seed = spawn_seed(5, 3)
        assert random.Random(seed).random() == spawn_rng(5, 3).random()

    def test_spawn_seed_consumes_shared_stream_in_order(self):
        shared_a, shared_b = random.Random(1), random.Random(1)
        seeds = [spawn_seed(shared_a, i) for i in range(4)]
        rngs = [spawn_rng(shared_b, i) for i in range(4)]
        assert [random.Random(s).random() for s in seeds] == [
            r.random() for r in rngs
        ]
        assert len(set(seeds)) == 4


class TestDriverParity:
    """--jobs N must be bit-identical to serial for the same seed."""

    def test_random_graph_cell_parity(self):
        serial = run_random_graph_cell(5, 6, "log", rng=3, jobs=1)
        parallel = run_random_graph_cell(5, 6, "log", rng=3, jobs=2)
        assert serial == parallel

    def test_table6_render_parity(self):
        serial = run_table6(node_counts=(5,), batch_sizes=(4,), rng=7, jobs=1)
        parallel = run_table6(node_counts=(5,), batch_sizes=(4,), rng=7, jobs=2)
        assert serial.render() == parallel.render()
        assert serial.cells == parallel.cells

    def test_random_monitor_parity(self):
        serial = run_random_monitor_experiment(getnet(), 4, rng=2, jobs=1)
        parallel = run_random_monitor_experiment(getnet(), 4, rng=2, jobs=2)
        assert serial.render() == parallel.render()

    def test_truncated_parity(self):
        serial = run_truncated_experiment(eunetwork_small(), 4, rng=2, jobs=1)
        parallel = run_truncated_experiment(eunetwork_small(), 4, rng=2, jobs=2)
        assert serial.render() == parallel.render()

    def test_ablation_parity(self):
        serial = selector_ablation(eunetwork_small(), n_runs=2, rng=1, jobs=1)
        parallel = selector_ablation(eunetwork_small(), n_runs=2, rng=1, jobs=2)
        assert serial == parallel


class TestCacheStatsMerging:
    def test_worker_deltas_merge_into_parent(self):
        clear_pathset_cache()
        run_random_monitor_experiment(getnet(), 4, rng=2, jobs=2)
        stats = cache_stats()
        # Eight µ computations happen in the workers; their misses must be
        # visible in the parent's counters even though the entries are not.
        assert stats.hits + stats.misses >= 8
        clear_pathset_cache()

    def test_record_external_validates(self):
        cache = pathset_cache()
        with pytest.raises(ValueError):
            cache.record_external(-1, 0)

    def test_normalize_limits(self):
        assert normalize_limits(None, None) == normalize_limits()
        assert normalize_limits(3, None)[0] == 3
        with pytest.raises(ValueError):
            normalize_limits(0, None)

    def test_explicit_default_limits_share_cache_entry(self):
        from repro.engine import PathSetCache
        from repro.monitors.placement import MonitorPlacement
        from repro.routing.paths import DEFAULT_MAX_PATHS
        from repro.topology.lines import line_graph

        cache = PathSetCache()
        graph = line_graph(4)
        placement = MonitorPlacement.of(inputs={0}, outputs={3})
        cache.get_or_enumerate(graph, placement, "CSP")
        cache.get_or_enumerate(
            graph, placement, "CSP", cutoff=None, max_paths=DEFAULT_MAX_PATHS
        )
        cache.get_or_enumerate(graph, placement, "CSP", max_paths=None)
        assert cache.stats().misses == 1
        assert cache.stats().hits == 2


class TestBackendScoping:
    def test_backend_policy_restores(self):
        before = select_backend()
        with backend_policy("python") as active:
            assert active == "python"
            assert select_backend() == "python"
        assert select_backend() == before

    def test_backend_policy_restores_on_error(self):
        before = select_backend()
        with pytest.raises(RuntimeError):
            with backend_policy("python"):
                raise RuntimeError("boom")
        assert select_backend() == before

    def test_backend_policy_none_is_a_noop(self):
        before = select_backend()
        with backend_policy(None) as active:
            assert active == before
        assert select_backend() == before


class TestJsonFormat:
    def test_json_round_trip(self):
        sections = runner.run("ablation", seed=1, trials=2)
        document = json.loads(runner.render_json(sections, seed=1, jobs=2))
        assert document["seed"] == 1
        assert document["jobs"] == 2
        assert len(document["sections"]) == len(sections)
        for rendered, section in zip(document["sections"], sections):
            assert rendered["title"] == section.title
            assert rendered["group"] == "ablation"
            assert rendered["text"] == section.body
            assert rendered["data"]["cells"]

    def test_json_cell_keys_are_strings(self):
        table = run_table6(node_counts=(5,), batch_sizes=(2,), rng=4)
        data = runner.to_jsonable(table)
        assert "2,5" in data["cells"]
        json.dumps(data)  # must be serialisable as-is

    def test_main_json_output_file(self, tmp_path):
        out = tmp_path / "tables.json"
        exit_code = runner.main(
            ["--tables", "random", "--trials", "2", "--jobs", "2",
             "--format", "json", "--output", str(out)]
        )
        assert exit_code == 0
        document = json.loads(out.read_text())
        assert {s["title"] for s in document["sections"]} == {"Table 6", "Table 7"}

    def test_cli_text_and_json_carry_same_tables(self):
        sections = runner.run("random", seed=5, trials=2, jobs=2)
        text = runner.render_text(sections)
        document = json.loads(runner.render_json(sections, seed=5, jobs=2))
        for rendered in document["sections"]:
            assert rendered["text"] in text
