"""Tree monitor placements: χ_t (Section 4) and monitor-balancedness (Section 5).

For a *downward* directed tree the placement χ_t puts the root in ``m`` and
every leaf in ``M``; for an *upward* tree the roles are reversed.  Theorem 4.1
shows µ(T_n|χ_t) = 1 for line-free directed trees, and the placement is
optimal: removing a single leaf monitor drops µ to 0.

For undirected trees the relevant notion is Definition 5.1: a tree is
*monitor-balanced* under χ when, for every non-leaf node ``u``, the family of
``u``-subtrees contains at least two input trees and at least two output
trees.  Lemma 5.2: if the tree is not monitor-balanced then µ < 1; Theorem
5.3: if it is, µ = 1.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

import networkx as nx

from repro._typing import Node
from repro.exceptions import MonitorPlacementError, TopologyError
from repro.monitors.placement import MonitorPlacement
from repro.topology.trees import (
    internal_nodes,
    is_downward_tree,
    is_tree,
    is_upward_tree,
    node_subtrees,
    tree_leaves,
    tree_root,
)


def chi_t(tree: nx.DiGraph) -> MonitorPlacement:
    """The placement χ_t for a downward or upward directed tree.

    Downward tree: ``m = {root}``, ``M = leaves``.
    Upward tree:   ``m = leaves``, ``M = {root}``.
    """
    if not (is_downward_tree(tree) or is_upward_tree(tree)):
        raise MonitorPlacementError(
            "chi_t requires a downward or upward directed tree"
        )
    root = tree_root(tree)
    leaves = tree_leaves(tree)
    if is_downward_tree(tree):
        placement = MonitorPlacement(frozenset({root}), leaves)
    else:
        placement = MonitorPlacement(leaves, frozenset({root}))
    placement.validate(tree)
    return placement


def chi_t_with_missing_leaf(tree: nx.DiGraph, leaf: Node) -> MonitorPlacement:
    """χ_t with the monitor on ``leaf`` removed (optimality check of Thm 4.1).

    The paper observes that dropping one leaf monitor makes {leaf's sibling}
    and {leaf's parent} inseparable, so µ falls to 0.  This helper is used by
    tests and benchmarks that verify the optimality claim.
    """
    base = chi_t(tree)
    if leaf not in tree_leaves(tree):
        raise MonitorPlacementError(f"{leaf!r} is not a leaf of the tree")
    if is_downward_tree(tree):
        outputs = base.outputs - {leaf}
        if not outputs:
            raise MonitorPlacementError("cannot remove the only output monitor")
        return MonitorPlacement(base.inputs, outputs)
    inputs = base.inputs - {leaf}
    if not inputs:
        raise MonitorPlacementError("cannot remove the only input monitor")
    return MonitorPlacement(inputs, base.outputs)


def is_input_tree(subtree: nx.Graph, placement: MonitorPlacement) -> bool:
    """True when ``subtree`` contains a node of ``m`` (an *input tree*)."""
    return any(node in placement.inputs for node in subtree.nodes)


def is_output_tree(subtree: nx.Graph, placement: MonitorPlacement) -> bool:
    """True when ``subtree`` contains a node of ``M`` (an *output tree*)."""
    return any(node in placement.outputs for node in subtree.nodes)


def is_monitor_balanced(tree: nx.Graph, placement: MonitorPlacement) -> bool:
    """Definition 5.1: every non-leaf node's subtree family contains at least
    two input trees and at least two output trees.

    Only defined for undirected trees.
    """
    if tree.is_directed():
        raise TopologyError("monitor-balancedness is defined for undirected trees")
    if not is_tree(tree):
        raise TopologyError("is_monitor_balanced requires a tree")
    placement.validate(tree)
    for node in internal_nodes(tree):
        subtrees = node_subtrees(tree, node)
        input_count = sum(
            1 for sub in subtrees.values() if is_input_tree(sub, placement)
        )
        output_count = sum(
            1 for sub in subtrees.values() if is_output_tree(sub, placement)
        )
        if input_count < 2 or output_count < 2:
            return False
    return True


def unbalanced_witness(
    tree: nx.Graph, placement: MonitorPlacement
) -> Dict[str, object]:
    """Return a witness of non-balancedness, or an empty dict if balanced.

    The witness mirrors the three cases of Lemma 5.2 / Figure 7: the internal
    node ``u`` whose subtree family has fewer than two input trees or fewer
    than two output trees, together with the counts.
    """
    if tree.is_directed():
        raise TopologyError("monitor-balancedness is defined for undirected trees")
    placement.validate(tree)
    for node in internal_nodes(tree):
        subtrees = node_subtrees(tree, node)
        input_count = sum(
            1 for sub in subtrees.values() if is_input_tree(sub, placement)
        )
        output_count = sum(
            1 for sub in subtrees.values() if is_output_tree(sub, placement)
        )
        if input_count < 2 or output_count < 2:
            return {
                "node": node,
                "input_trees": input_count,
                "output_trees": output_count,
                "n_subtrees": len(subtrees),
            }
    return {}


def balanced_leaf_placement(tree: nx.Graph) -> MonitorPlacement:
    """Construct a monitor-balanced placement on an undirected tree when possible.

    Strategy: alternate the leaves (in a deterministic order given by a DFS
    from an arbitrary root) between ``m`` and ``M``.  On line-free trees whose
    every internal node has at least two leaf-bearing subtrees on each side
    this yields a balanced placement; when the alternation fails to balance
    the tree a :class:`MonitorPlacementError` is raised with the witness node,
    reflecting the structural limit stated by Lemma 5.2.
    """
    if tree.is_directed():
        raise TopologyError("balanced_leaf_placement requires an undirected tree")
    if not is_tree(tree):
        raise TopologyError("balanced_leaf_placement requires a tree")
    leaves = [node for node in tree.nodes if tree.degree(node) == 1]
    if len(leaves) < 4:
        raise MonitorPlacementError(
            "a monitor-balanced placement needs at least 4 leaves"
        )
    # Deterministic order: DFS preorder from the smallest-repr node.
    root = min(tree.nodes, key=repr)
    order = list(nx.dfs_preorder_nodes(tree, root))
    ordered_leaves = [node for node in order if tree.degree(node) == 1]
    inputs = frozenset(ordered_leaves[0::2])
    outputs = frozenset(ordered_leaves[1::2])
    placement = MonitorPlacement(inputs, outputs)
    witness = unbalanced_witness(tree, placement)
    if witness:
        raise MonitorPlacementError(
            "could not balance the tree by alternating leaves; "
            f"witness node {witness['node']!r} has {witness['input_trees']} input "
            f"trees and {witness['output_trees']} output trees"
        )
    return placement
