"""Fault-tolerance policy and bookkeeping for the trial pool.

:class:`ExecutionPolicy` bundles the resilience knobs of
:func:`repro.experiments.parallel.run_trials` — per-trial timeout, bounded
retries with exponential backoff + jitter, quarantine mode, and an optional
:class:`~repro.resilience.chaos.ChaosConfig` — and the ambient
:func:`execution_policy` context manager scopes them to a whole runner
invocation (``--trial-timeout`` / ``--max-retries``) the same way the
backend/compression/sharding policies scope their flags.

Backoff jitter exists to decorrelate retry storms, not to perturb results:
every trial's randomness travels in its pickled spec (the original
``spawn_seed`` is reused on retry), so jitter affects *when* a retry runs,
never *what* it computes — successful output stays bit-identical to serial.
The jitter itself is seeded per ``(trial, attempt)`` so a resilient run's
schedule is reproducible too.

The process-global retry counters mirror ``search_counters``: drivers and the
benchmark harness snapshot them around a run to report how much fault
handling actually happened (``BENCH_JSON`` records them so clean hosts can
assert zero retries).
"""

from __future__ import annotations

import contextlib
import random
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterator, Optional

from repro.exceptions import ExperimentError
from repro.resilience.chaos import ChaosConfig

#: Upper bound on one backoff sleep, seconds (keeps a long retry ladder from
#: stalling the batch).
BACKOFF_CAP = 2.0


@dataclass(frozen=True)
class TrialFailure:
    """A quarantined poison trial: it exhausted ``max_retries`` and was
    recorded instead of killing the batch (``failure_mode="record"``).

    ``kind`` is ``"timeout"`` (exceeded ``trial_timeout``), ``"crash"``
    (worker died — ``BrokenProcessPool``), or ``"error"`` (the trial raised).
    ``attempts`` counts executions, so ``attempts == max_retries + 1``.
    """

    index: int
    label: str
    kind: str
    error: str
    attempts: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "label": self.label,
            "kind": self.kind,
            "error": self.error,
            "attempts": self.attempts,
        }


@dataclass(frozen=True)
class ExecutionPolicy:
    """Resilience knobs for one ``run_trials`` fan-out.

    The default policy (no timeout, no retries, no chaos, ``"raise"``)
    selects the original fast path — a plain ``pool.map`` with no
    fault-handling overhead — so existing drivers are untouched unless a
    knob is set.
    """

    trial_timeout: Optional[float] = None
    max_retries: int = 0
    retry_backoff: float = 0.05
    failure_mode: str = "raise"
    chaos: Optional[ChaosConfig] = None

    def __post_init__(self) -> None:
        if self.trial_timeout is not None and self.trial_timeout <= 0:
            raise ExperimentError(
                f"trial_timeout must be > 0 seconds, got {self.trial_timeout!r}"
            )
        if self.max_retries < 0:
            raise ExperimentError(
                f"max_retries must be >= 0, got {self.max_retries!r}"
            )
        if self.retry_backoff < 0:
            raise ExperimentError(
                f"retry_backoff must be >= 0, got {self.retry_backoff!r}"
            )
        if self.failure_mode not in ("raise", "record"):
            raise ExperimentError(
                f"failure_mode must be 'raise' or 'record', "
                f"got {self.failure_mode!r}"
            )

    @property
    def resilient(self) -> bool:
        """Whether any knob forces the fault-tolerant submit path."""
        return (
            self.trial_timeout is not None
            or self.max_retries > 0
            or self.chaos is not None
            or self.failure_mode != "raise"
        )

    def backoff_seconds(self, index: int, attempt: int) -> float:
        """Exponential backoff with deterministic per-(trial, attempt)
        jitter, capped at :data:`BACKOFF_CAP`."""
        if self.retry_backoff == 0:
            return 0.0
        base = self.retry_backoff * (2 ** max(0, attempt - 1))
        jitter = random.Random(f"backoff:{index}:{attempt}").uniform(0.0, 1.0)
        return min(BACKOFF_CAP, base * (1.0 + jitter))


_POLICY = ExecutionPolicy()


def current_execution_policy() -> ExecutionPolicy:
    """The ambient policy ``run_trials`` starts from."""
    return _POLICY


@contextlib.contextmanager
def execution_policy(
    trial_timeout: Optional[float] = None,
    max_retries: Optional[int] = None,
    retry_backoff: Optional[float] = None,
    failure_mode: Optional[str] = None,
    chaos: Optional[ChaosConfig] = None,
) -> Iterator[ExecutionPolicy]:
    """Scope resilience knobs to a ``with`` block (``None`` fields keep the
    current value; the previous policy is restored on exit)."""
    global _POLICY
    previous = _POLICY
    overrides = {
        name: value
        for name, value in (
            ("trial_timeout", trial_timeout),
            ("max_retries", max_retries),
            ("retry_backoff", retry_backoff),
            ("failure_mode", failure_mode),
            ("chaos", chaos),
        )
        if value is not None
    }
    try:
        if overrides:
            _POLICY = replace(previous, **overrides)
        yield _POLICY
    finally:
        _POLICY = previous


# -- retry observability ------------------------------------------------------

_POOL_COUNTERS: Dict[str, int] = {
    "retries": 0,
    "timeouts": 0,
    "worker_crashes": 0,
    "pool_rebuilds": 0,
    "trial_failures": 0,
}


@dataclass(frozen=True)
class PoolCounters:
    """Process-global fault-handling counters (parent-side: retries are
    scheduled by the parent, so no worker merge is needed)."""

    retries: int
    timeouts: int
    worker_crashes: int
    pool_rebuilds: int
    trial_failures: int

    def as_dict(self) -> Dict[str, int]:
        return {
            "retries": self.retries,
            "timeouts": self.timeouts,
            "worker_crashes": self.worker_crashes,
            "pool_rebuilds": self.pool_rebuilds,
            "trial_failures": self.trial_failures,
        }


def pool_counters() -> PoolCounters:
    """Snapshot of the accumulated fault-handling counters."""
    return PoolCounters(**_POOL_COUNTERS)


def reset_pool_counters() -> None:
    """Zero the fault-handling counters."""
    for name in _POOL_COUNTERS:
        _POOL_COUNTERS[name] = 0


def _record_pool_event(name: str, count: int = 1) -> None:
    _POOL_COUNTERS[name] += count
