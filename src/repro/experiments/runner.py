"""Command-line entry point: re-run the paper's experimental section.

Installed as the ``repro-experiments`` console script.  Examples::

    repro-experiments --tables real            # Tables 3-5
    repro-experiments --tables random          # Tables 6-7 (reduced batches)
    repro-experiments --tables truncated       # Tables 8-10
    repro-experiments --tables monitors        # Tables 11-13
    repro-experiments --tables all --seed 7    # everything, custom seed

Output is plain text, one paper-style table per experiment, suitable for
pasting into EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Iterable, List

from repro.engine import cache_stats, clear_pathset_cache, select_backend
from repro.experiments import (
    ablation,
    random_graphs,
    random_monitors,
    real_networks,
    truncated,
)
from repro.topology import zoo

#: Mapping of CLI group name -> callable(seed) -> list of printable sections.
_GROUPS: Dict[str, Callable[[int], List[str]]] = {}


def _register(name: str):
    def decorator(func: Callable[[int], List[str]]):
        _GROUPS[name] = func
        return func

    return decorator


@_register("real")
def _run_real(seed: int) -> List[str]:
    sections = []
    for table_name, result in real_networks.run_all_real_networks(rng=seed).items():
        label = real_networks.REAL_NETWORK_TABLES[table_name]
        sections.append(f"== {label} ==\n{result.render()}")
    return sections


@_register("random")
def _run_random(seed: int) -> List[str]:
    table6 = random_graphs.run_table6(rng=seed)
    table7 = random_graphs.run_table7(rng=seed)
    return [
        f"== Table 6 ==\n{table6.render()}",
        f"== Table 7 ==\n{table7.render()}",
    ]


@_register("truncated")
def _run_truncated(seed: int) -> List[str]:
    sections = []
    for name, result in truncated.run_all_truncated(rng=seed).items():
        label = truncated.TRUNCATED_TABLES[name]
        sections.append(f"== {label} ==\n{result.render()}")
    return sections


@_register("monitors")
def _run_monitors(seed: int) -> List[str]:
    sections = []
    for name, result in random_monitors.run_all_random_monitors(rng=seed).items():
        label = random_monitors.RANDOM_MONITOR_TABLES[name]
        sections.append(f"== {label} ==\n{result.render()}")
    return sections


@_register("ablation")
def _run_ablation(seed: int) -> List[str]:
    graph = zoo.eunetworks()
    placement = ablation.placement_ablation(graph, rng=seed)
    selector = ablation.selector_ablation(graph, rng=seed)
    return [
        placement.render("Ablation: monitor placement heuristic"),
        selector.render("Ablation: Agrid edge-selection rule"),
    ]


def available_groups() -> Iterable[str]:
    """The experiment groups the CLI can run."""
    return sorted(_GROUPS) + ["all"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Re-run the experimental section of the Boolean network "
        "tomography identifiability paper (Tables 3-13 plus ablations).",
    )
    parser.add_argument(
        "--tables",
        default="all",
        choices=list(available_groups()),
        help="which experiment group to run (default: all)",
    )
    parser.add_argument(
        "--seed", type=int, default=2018, help="master random seed (default: 2018)"
    )
    parser.add_argument(
        "--backend",
        default=None,
        choices=["auto", "python", "numpy"],
        help="signature-engine backend policy for every µ computation "
        "(default: the engine's 'auto' policy)",
    )
    parser.add_argument(
        "--cache-stats",
        action="store_true",
        help="print the pathset-cache hit/miss counters after the run",
    )
    return parser


def run(group: str, seed: int) -> List[str]:
    """Run one group (or 'all') and return the printable sections.

    The pathset cache is cleared first so every invocation is reproducible
    and its reported statistics describe this run only.
    """
    clear_pathset_cache()
    if group == "all":
        sections: List[str] = []
        for name in sorted(_GROUPS):
            sections.extend(_GROUPS[name](seed))
        return sections
    return _GROUPS[group](seed)


def main(argv: List[str] | None = None) -> int:
    """Console-script entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.backend is not None:
        select_backend(args.backend)
    for section in run(args.tables, args.seed):
        print(section)
        print()
    if args.cache_stats:
        print(cache_stats())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
