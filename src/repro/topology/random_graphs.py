"""Random graph generators used by the experimental section (Tables 6 and 7).

The paper draws graphs "according to Erdős–Rényi distribution" over 5, 8 and
10 nodes and applies Agrid to each sample.  We provide

* :func:`erdos_renyi` — plain G(n, p) sampling;
* :func:`erdos_renyi_connected` — rejection sampling of connected G(n, p),
  which is what the experiments actually need (the measure is degenerate on
  disconnected graphs; the paper notes the 2-monitor anomaly when monitors end
  up in distinct components);
* :func:`random_connected_sparse` — a connected sparse graph with a prescribed
  number of extra edges on top of a random spanning tree, used by the ablation
  experiments.
"""

from __future__ import annotations

import networkx as nx

from repro.exceptions import TopologyError
from repro.utils.seeds import RngLike, resolve_rng

#: Default edge probability used by the experiment drivers.  With p = 0.4 the
#: 5/8/10-node samples are sparse, tree-ish graphs comparable to the small
#: access networks of Section 8.
DEFAULT_EDGE_PROBABILITY = 0.4

#: Give up after this many rejection-sampling attempts.
_MAX_ATTEMPTS = 10_000


def erdos_renyi(n_nodes: int, probability: float, rng: RngLike = None) -> nx.Graph:
    """Sample an Erdős–Rényi graph ``G(n, p)`` with nodes ``0 .. n-1``."""
    _validate(n_nodes, probability)
    generator = resolve_rng(rng)
    graph = nx.Graph(name=f"G({n_nodes},{probability})")
    graph.add_nodes_from(range(n_nodes))
    for u in range(n_nodes):
        for v in range(u + 1, n_nodes):
            if generator.random() < probability:
                graph.add_edge(u, v)
    return graph


def erdos_renyi_connected(
    n_nodes: int, probability: float = DEFAULT_EDGE_PROBABILITY, rng: RngLike = None
) -> nx.Graph:
    """Sample a *connected* Erdős–Rényi graph by rejection.

    Raises :class:`TopologyError` if no connected sample is found within the
    internal attempt budget (only possible for pathologically small ``p``).
    """
    _validate(n_nodes, probability)
    generator = resolve_rng(rng)
    for _ in range(_MAX_ATTEMPTS):
        graph = erdos_renyi(n_nodes, probability, generator)
        if graph.number_of_nodes() > 0 and nx.is_connected(graph):
            return graph
    raise TopologyError(
        f"could not sample a connected G({n_nodes},{probability}) within "
        f"{_MAX_ATTEMPTS} attempts"
    )


def random_connected_sparse(
    n_nodes: int, extra_edges: int = 0, rng: RngLike = None
) -> nx.Graph:
    """A connected graph built as random-spanning-tree + ``extra_edges`` chords.

    This mirrors the "quasi-tree" structure of the small real networks of the
    paper's Section 8 and is used by the ablation experiments, where we want
    tight control over |E| while keeping the graph connected.
    """
    if n_nodes < 2:
        raise TopologyError(f"need at least 2 nodes, got {n_nodes}")
    if extra_edges < 0:
        raise TopologyError(f"extra_edges must be >= 0, got {extra_edges}")
    max_extra = n_nodes * (n_nodes - 1) // 2 - (n_nodes - 1)
    if extra_edges > max_extra:
        raise TopologyError(
            f"extra_edges={extra_edges} exceeds the {max_extra} chords available "
            f"on {n_nodes} nodes"
        )
    generator = resolve_rng(rng)
    graph = nx.Graph(name=f"quasi-tree({n_nodes},{extra_edges})")
    graph.add_node(0)
    for node in range(1, n_nodes):
        graph.add_edge(generator.randrange(node), node)
    non_edges = [
        (u, v)
        for u in range(n_nodes)
        for v in range(u + 1, n_nodes)
        if not graph.has_edge(u, v)
    ]
    generator.shuffle(non_edges)
    graph.add_edges_from(non_edges[:extra_edges])
    return graph


def _validate(n_nodes: int, probability: float) -> None:
    if n_nodes < 1:
        raise TopologyError(f"need at least 1 node, got {n_nodes}")
    if not 0.0 <= probability <= 1.0:
        raise TopologyError(f"edge probability must be in [0, 1], got {probability}")
