"""Bitmask helpers.

Measurement paths are indexed ``0 .. |P|-1`` and the set of paths crossing a
node (``P(v)`` in the paper) is stored as a Python integer used as a bitmask.
Unions of path sets — ``P(U) = \\bigcup_{u in U} P(u)`` — are then plain
bitwise ORs, which keeps the exhaustive identifiability search fast even with
tens of thousands of paths.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence


def mask_from_indices(indices: Iterable[int]) -> int:
    """Build a bitmask with the given bit positions set.

    >>> bin(mask_from_indices([0, 2, 3]))
    '0b1101'
    """
    mask = 0
    for index in indices:
        if index < 0:
            raise ValueError(f"bit index must be non-negative, got {index}")
        mask |= 1 << index
    return mask


def union_masks(masks: Iterable[int]) -> int:
    """Bitwise OR of an iterable of masks (the union of the path sets)."""
    result = 0
    for mask in masks:
        result |= mask
    return result


def bit_count(mask: int) -> int:
    """Number of set bits (size of the represented path set)."""
    return mask.bit_count()


def bits_of(mask: int) -> Iterator[int]:
    """Yield the indices of the set bits of ``mask`` in increasing order.

    >>> list(bits_of(0b1101))
    [0, 2, 3]
    """
    index = 0
    while mask:
        if mask & 1:
            yield index
        mask >>= 1
        index += 1


def masks_for_nodes(
    node_order: Sequence, membership: Mapping, universe_size: int
) -> Mapping:
    """Utility used in tests: build ``node -> mask`` from ``node -> iterable``.

    ``membership[node]`` must be an iterable of path indices smaller than
    ``universe_size``.
    """
    result = {}
    for node in node_order:
        indices = list(membership.get(node, ()))
        for index in indices:
            if index >= universe_size:
                raise ValueError(
                    f"path index {index} out of range for universe of size {universe_size}"
                )
        result[node] = mask_from_indices(indices)
    return result
