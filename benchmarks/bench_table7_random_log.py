"""Table 7 — Agrid on Erdős–Rényi graphs, d = log n.

Paper's shape: with the larger dimension the improvement is clearly more
frequent than in Table 6 (tens of percent of trials improve) and the maximal
increment reaches 2.  Batch sizes reduced as in bench_table6.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.random_graphs import run_table6, run_table7

BATCH_SIZES = (20, 40)
NODE_COUNTS = (5, 8, 10)


def test_table7_random_graphs_log(benchmark, bench_seed):
    table = run_once(
        benchmark,
        run_table7,
        node_counts=NODE_COUNTS,
        batch_sizes=BATCH_SIZES,
        rng=bench_seed,
    )

    assert table.never_decreased
    improved_fractions = [cell.fraction_improved for cell in table.cells.values()]
    assert any(fraction > 0 for fraction in improved_fractions), (
        "with d = log n at least some random graphs must improve"
    )

    benchmark.extra_info["table"] = "Table 7 (random graphs, d=log n)"
    benchmark.extra_info["cells"] = {
        f"trials={key[0]},n={key[1]}": cell.render_cell()
        for key, cell in table.cells.items()
    }
