"""Paper-level tests for the directed-topology theorems (Section 4).

These are the headline results of the paper, checked by exact computation:

* Theorem 4.1 — line-free directed trees under χ_t have µ = 1, and the
  placement is optimal (removing a leaf monitor drops µ to 0).
* Theorem 4.8 — directed grids H_n under χ_g have µ = 2 (n ≥ 3).
* Theorem 4.9 — directed hypergrids H_{n,d} under χ_g have µ = d.
* Optimality of χ_g — removing the input links to (1,2) and (2,1) makes
  {(1,2),(2,1)} and {(1,1)} inseparable.
"""

from __future__ import annotations

import pytest

from repro.analysis.theory import (
    predicted_mu_directed_hypergrid,
    predicted_mu_directed_tree,
)
from repro.analysis.verification import verify
from repro.core.identifiability import mu
from repro.monitors.grid_placement import chi_g, reduced_chi_g
from repro.monitors.tree_placement import chi_t, chi_t_with_missing_leaf
from repro.routing.mechanisms import RoutingMechanism
from repro.routing.paths import enumerate_paths
from repro.topology.grids import directed_grid, directed_hypergrid
from repro.topology.trees import complete_kary_tree, tree_leaves


class TestTheorem41Trees:
    @pytest.mark.parametrize("depth,arity", [(2, 2), (3, 2), (2, 3)])
    def test_downward_tree_mu_is_one(self, depth, arity):
        tree = complete_kary_tree(depth, arity)
        assert mu(tree, chi_t(tree)) == 1

    @pytest.mark.parametrize("depth,arity", [(2, 2), (2, 3)])
    def test_upward_tree_mu_is_one(self, depth, arity):
        tree = complete_kary_tree(depth, arity, direction="up")
        assert mu(tree, chi_t(tree)) == 1

    def test_cap_minus_agrees(self):
        tree = complete_kary_tree(2, 2)
        assert mu(tree, chi_t(tree), RoutingMechanism.CAP_MINUS) == 1

    def test_prediction_matches(self):
        tree = complete_kary_tree(3, 2)
        prediction = predicted_mu_directed_tree(tree)
        assert prediction.exact == 1
        assert prediction.contains(mu(tree, chi_t(tree)))

    def test_optimality_removing_leaf_monitor_drops_mu_to_zero(self):
        tree = complete_kary_tree(2, 2)
        leaf = sorted(tree_leaves(tree))[0]
        weakened = chi_t_with_missing_leaf(tree, leaf)
        assert mu(tree, weakened) == 0

    def test_verification_report_passes(self):
        tree = complete_kary_tree(2, 2)
        report = verify(tree, chi_t(tree))
        assert report.mu_value == 1
        assert report.all_checks_pass


class TestTheorem48Grids:
    @pytest.mark.parametrize("n", [3, 4])
    def test_directed_grid_mu_is_two(self, n):
        grid = directed_grid(n)
        assert mu(grid, chi_g(grid)) == 2

    def test_cap_minus_agrees_on_h3(self):
        grid = directed_grid(3)
        assert mu(grid, chi_g(grid), RoutingMechanism.CAP_MINUS) == 2

    def test_prediction_matches(self):
        grid = directed_grid(4)
        prediction = predicted_mu_directed_hypergrid(grid)
        assert prediction.exact == 2

    def test_number_of_monitors_is_4n_minus_2(self):
        grid = directed_grid(5)
        assert chi_g(grid).n_monitors == 4 * 5 - 2

    def test_verification_report_passes(self, directed_grid_4):
        report = verify(directed_grid_4, chi_g(directed_grid_4))
        assert report.mu_value == 2
        assert report.all_checks_pass

    def test_optimality_of_chi_g(self):
        """Section 4.1: with 4n-5 monitors, {(1,2),(2,1)} and {(1,1)} are
        inseparable, so the identifiability drops below 2."""
        grid = directed_grid(3)
        weakened = reduced_chi_g(grid)
        pathset = enumerate_paths(grid, weakened, "CSP")
        assert not pathset.separates({(1, 2), (2, 1)}, {(1, 1)})
        assert mu(grid, weakened) < 2


class TestTheorem49Hypergrids:
    def test_three_dimensional_hypergrid_mu_is_three(self, hypergrid_333):
        assert mu(hypergrid_333, chi_g(hypergrid_333)) == 3

    def test_prediction_matches(self, hypergrid_333):
        assert predicted_mu_directed_hypergrid(hypergrid_333).exact == 3

    def test_monitor_count_is_twice_the_face_size(self, hypergrid_333):
        # The face placement attaches monitors to every node with a coordinate
        # equal to 1 (inputs) or n (outputs): n^d - (n-1)^d nodes per side.
        assert chi_g(hypergrid_333).n_monitors == 2 * (3**3 - 2**3)

    def test_verification_report_passes(self, hypergrid_333):
        report = verify(hypergrid_333, chi_g(hypergrid_333))
        assert report.mu_value == 3
        assert report.all_checks_pass
