"""Keyed cache over path-set enumeration (and, transitively, signatures).

Enumerating ``P(G|χ)`` is by far the most expensive step of every experiment
row — ``networkx.all_simple_paths`` over all monitor pairs — and the table
drivers routinely revisit the same ``(graph, placement, mechanism)`` triple
(both dimension rules on the same network, repeated µ_α levels, ablation
variants sharing a baseline).  :class:`PathSetCache` memoises the enumerated
:class:`~repro.routing.paths.PathSet` under a *content* key — graph
directedness, node set, edge set, placement, mechanism and the enumeration
limits — so mutating or rebuilding an equal graph still hits.

Because the cached object is the same :class:`PathSet` instance, the
signature engines memoised on it (:meth:`PathSet.engine`) are reused too: a
cache hit skips the path enumeration, the signature interning *and* the
duplicate-column compression.  Neither the backend, the compression flag nor
the failure universe belongs in the enumeration key — they are engine-level
axes, keyed on the :class:`PathSet` itself (engines and their compression
plans are memoised per universe *fingerprint*, backend and compression
flag) — so one cache entry serves every (universe, backend, compression)
combination: a node-mode and a link-mode measurement of the same
``(graph, placement, mechanism)`` triple enumerate paths exactly once.

The module-level :func:`cached_enumerate_paths` is the drop-in replacement
for :func:`~repro.routing.paths.enumerate_paths` used by the experiment
drivers; :func:`cache_stats` / :func:`clear_pathset_cache` expose the global
cache to the CLI and to tests.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable, Optional, Tuple

from repro._typing import AnyGraph
from repro.monitors.placement import MonitorPlacement
from repro.routing.mechanisms import RoutingMechanism
from repro.routing.paths import (
    DEFAULT_CUTOFF,
    DEFAULT_MAX_PATHS,
    PathSet,
    enumerate_paths,
)


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss/eviction counters of a :class:`PathSetCache`."""

    hits: int
    misses: int
    size: int
    #: Entries silently dropped by the LRU bound.  A high eviction count with
    #: a low hit rate means the working set exceeds ``maxsize`` — the cache
    #: is thrashing, not helping.
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"pathset cache: {self.hits} hits / {self.misses} misses "
            f"({self.hit_rate:.0%}), {self.size} entries, "
            f"{self.evictions} evictions"
        )


def graph_fingerprint(graph: AnyGraph) -> Hashable:
    """A hashable content key for a graph: directedness, nodes and edges.

    Undirected edges are canonicalised as frozensets so ``(u, v)`` and
    ``(v, u)`` fingerprint identically; a self-loop becomes the singleton
    frozenset.  Equal-content graphs — even distinct objects — share a key.
    """
    if graph.is_directed():
        edges: Hashable = frozenset(graph.edges())
    else:
        edges = frozenset(frozenset(edge) for edge in graph.edges())
    return (graph.is_directed(), frozenset(graph.nodes()), edges)


def normalize_limits(
    cutoff: Optional[int] = DEFAULT_CUTOFF,
    max_paths: Optional[int] = DEFAULT_MAX_PATHS,
) -> Tuple[Optional[int], int]:
    """Canonicalise the enumeration limits of a request.

    ``None`` for either limit means "the default" (no cutoff, the module's
    path-explosion guard), so a caller that spells the defaults explicitly —
    or passes ``max_paths=None`` where another passes nothing — always lands
    on the same cache key.  A non-positive cutoff admits no path at all and
    is rejected outright rather than silently cached.
    """
    if cutoff is None:
        cutoff = DEFAULT_CUTOFF
    elif cutoff < 1:
        raise ValueError(f"cutoff must be >= 1 edge (or None), got {cutoff}")
    if max_paths is None:
        max_paths = DEFAULT_MAX_PATHS
    return cutoff, max_paths


#: Default LRU bound of a :class:`PathSetCache` (the historical hard-coded
#: value; tune per process via :meth:`PathSetCache.resize`, per spec via
#: ``EngineConfig.cache_maxsize``, or per service via ``repro-serve
#: --cache-size``).
DEFAULT_CACHE_MAXSIZE = 128


class PathSetCache:
    """LRU cache of enumerated path sets keyed by enumeration inputs.

    Thread-safe: an internal lock protects the entry table and the counters,
    so concurrent lookups from a service's async handlers and worker threads
    keep ``hits + misses == lookups`` exact.  The enumeration (or evolve
    build) itself runs *outside* the lock — two threads racing on the same
    cold key may both enumerate, but only the first insert wins and both
    callers receive the same cached instance, so the engines memoised on it
    stay shared.
    """

    def __init__(self, maxsize: int = DEFAULT_CACHE_MAXSIZE) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._entries: "OrderedDict[Hashable, PathSet]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def _key(
        graph: AnyGraph,
        placement: MonitorPlacement,
        mechanism: RoutingMechanism,
        cutoff: Optional[int],
        max_paths: int,
    ) -> Hashable:
        """Key construction over already-normalised inputs."""
        return (
            graph_fingerprint(graph),
            placement,
            mechanism,
            cutoff,
            max_paths,
        )

    @staticmethod
    def key_for(
        graph: AnyGraph,
        placement: MonitorPlacement,
        mechanism: RoutingMechanism | str = RoutingMechanism.CSP,
        cutoff: Optional[int] = DEFAULT_CUTOFF,
        max_paths: Optional[int] = DEFAULT_MAX_PATHS,
    ) -> Hashable:
        """The cache key of one enumeration request (limits normalised, so
        equal requests share an entry however the defaults are spelled)."""
        mechanism = RoutingMechanism.parse(mechanism)
        cutoff, max_paths = normalize_limits(cutoff, max_paths)
        return PathSetCache._key(graph, placement, mechanism, cutoff, max_paths)

    def get_or_enumerate(
        self,
        graph: AnyGraph,
        placement: MonitorPlacement,
        mechanism: RoutingMechanism | str = RoutingMechanism.CSP,
        cutoff: Optional[int] = DEFAULT_CUTOFF,
        max_paths: Optional[int] = DEFAULT_MAX_PATHS,
    ) -> PathSet:
        """The cached :class:`PathSet`, enumerating on first sight of the key."""
        mechanism = RoutingMechanism.parse(mechanism)
        cutoff, max_paths = normalize_limits(cutoff, max_paths)
        key = self._key(graph, placement, mechanism, cutoff, max_paths)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return cached
            self.misses += 1
        pathset = enumerate_paths(graph, placement, mechanism, cutoff, max_paths)
        return self._insert(key, pathset)

    def get_or_evolve(
        self,
        parent: PathSet,
        delta_fingerprint: Hashable,
        build: "Callable[[], PathSet]",
    ) -> PathSet:
        """The cached *evolved* path set of ``(parent, delta)``.

        Evolved path sets are keyed by (parent content fingerprint, delta
        fingerprint) rather than by enumeration inputs: the parent's
        fingerprint covers everything its own key covered (it is a digest of
        the enumerated content), so chains of deltas hit the cache — a
        replayed flap sequence pays for each distinct (state, delta) pair
        once.  Entries share the LRU bound and counters with the enumeration
        entries; a hit returns the same :class:`PathSet` instance, so the
        engines memoised on it are reused too.
        """
        key = ("evolve", parent.fingerprint(), delta_fingerprint)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return cached
            self.misses += 1
        pathset = build()
        return self._insert(key, pathset)

    def _insert(self, key: Hashable, pathset: PathSet) -> PathSet:
        """Publish a freshly built entry, resolving build races in favour of
        the first insert (so every caller shares one instance)."""
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                self._entries.move_to_end(key)
                return existing
            self._entries[key] = pathset
            self._evict()
            return pathset

    def _evict(self) -> None:
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1

    def resize(self, maxsize: int) -> None:
        """Change the LRU bound, evicting oldest entries down to it.

        How ``EngineConfig.cache_maxsize`` and the service ``--cache-size``
        knob reach the process cache: the bound was hard-coded at
        :data:`DEFAULT_CACHE_MAXSIZE` before, which a long-lived server's
        working set cannot live with.
        """
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        with self._lock:
            self.maxsize = maxsize
            self._evict()

    def record_external(self, hits: int, misses: int, evictions: int = 0) -> None:
        """Fold hit/miss/eviction counters observed elsewhere into this
        cache's stats.

        The parallel experiment runner gives every pool worker its own
        process-local cache; after the fan-out, each worker's deltas are
        merged back here so ``--cache-stats`` describes the whole run.  The
        entries themselves stay in the workers (shipping path sets back would
        cost more than re-enumerating), so ``size`` keeps counting only this
        process's entries.
        """
        if hits < 0 or misses < 0 or evictions < 0:
            raise ValueError(
                f"counters must be >= 0, got {hits=} {misses=} {evictions=}"
            )
        with self._lock:
            self.hits += hits
            self.misses += misses
            self.evictions += evictions

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self.hits,
                misses=self.misses,
                size=len(self._entries),
                evictions=self.evictions,
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


#: The process-wide cache used by the experiment drivers.
_GLOBAL_CACHE = PathSetCache()


def pathset_cache() -> PathSetCache:
    """The global :class:`PathSetCache` instance."""
    return _GLOBAL_CACHE


def cached_enumerate_paths(
    graph: AnyGraph,
    placement: MonitorPlacement,
    mechanism: RoutingMechanism | str = RoutingMechanism.CSP,
    cutoff: Optional[int] = DEFAULT_CUTOFF,
    max_paths: Optional[int] = DEFAULT_MAX_PATHS,
) -> PathSet:
    """Drop-in cached variant of :func:`repro.routing.paths.enumerate_paths`.

    Both limits accept ``None`` for "the default"; they are normalised by
    :func:`normalize_limits` before keying, so explicit-default and
    omitted-default requests share one cache entry.
    """
    return _GLOBAL_CACHE.get_or_enumerate(graph, placement, mechanism, cutoff, max_paths)


def cache_stats() -> CacheStats:
    """Counters of the global cache."""
    return _GLOBAL_CACHE.stats()


def clear_pathset_cache() -> None:
    """Reset the global cache.

    Called once per :func:`repro.experiments.runner.run` invocation — not
    between the groups inside an ``--tables all`` run, which deliberately
    share entries — and by tests that need pristine counters.
    """
    _GLOBAL_CACHE.clear()
