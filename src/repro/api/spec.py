"""The declarative, JSON-round-trippable scenario schema.

A :class:`ScenarioSpec` is the single value object describing one tomography
scenario end to end — topology source, monitor-placement strategy, routing
mechanism, failure model, engine policy and seed — in purely JSON-normal
data.  Specs are frozen, picklable, comparable, and round-trip losslessly
through ``to_json``/``from_json``; :meth:`ScenarioSpec.build` resolves the
registries of :mod:`repro.api.registries` into a live
:class:`~repro.api.scenario.Scenario`.

Schema (version 2)::

    {
      "schema_version": 2,
      "label": "",                                   # optional display name
      "topology":  {"name": "claranet", "params": {}},
      "placement": {"strategy": "mdmp", "params": {"d": 3}},
      "routing":   {"mechanism": "CSP", "cutoff": null, "max_paths": null},
      "failures":  {"model": "uniform", "size": 1, "n_trials": 10,
                    "universe": {"kind": "node", "groups": {}}},
      "engine":    {"backend": "auto", "compress": true, "cache": true},
      "seed": 2018,                                  # int, string or null
      "analyses": [{"analysis": "mu", "params": {}}]
    }

Version 2 added ``failures.universe`` — the failure universe every analysis
of the scenario ranges over: ``{"kind": "node"}`` (the paper's measure, the
default), ``{"kind": "link"}`` (link failures), or ``{"kind": "srlg",
"groups": {"name": [["u", "v"], ...], ...}}`` (named shared-risk link
groups; node labels use the literal-spec codec, so tuple labels are lists).
Version-1 documents parse unchanged and auto-upgrade to node mode — a v1
spec and its v2 upgrade build bit-identical scenarios.

The engine axes (``backend``, ``compress``, ``cache``) are **spec-scoped**:
a scenario built from a spec never reads or mutates the process-global
policies of :mod:`repro.engine`, so scenarios with different engine configs
coexist in one process.  :meth:`EngineConfig.from_policy` captures the
current globals for callers bridging from the legacy policy world.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.api.serialize import decode_node, encode_node, json_normalize
from repro.exceptions import SpecError
from repro.failures.universe import UNIVERSE_KINDS
from repro.routing.mechanisms import RoutingMechanism

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.resilience.budget import Budget

#: Version stamp embedded in every serialised spec.
SCHEMA_VERSION = 2

#: Schema versions :meth:`ScenarioSpec.from_dict` accepts.  Version 1 (no
#: ``failures.universe``) auto-upgrades to version 2 in node mode.
SUPPORTED_SCHEMA_VERSIONS = (1, 2)

#: Seeds are ints (CLI style), strings (spawned child-stream material from
#: :func:`repro.utils.seeds.spawn_seed`) or ``None`` (non-reproducible).
SeedLike = Union[int, str, None]


def _freeze_params(params: Optional[Mapping[str, Any]], kind: str) -> Dict[str, Any]:
    if params is None:
        return {}
    try:
        return json_normalize(dict(params))
    except TypeError as exc:
        raise SpecError(f"{kind} params are not JSON-normalisable: {exc}") from exc


def _expect_mapping(payload: Any, kind: str) -> Dict[str, Any]:
    if not isinstance(payload, Mapping):
        raise SpecError(f"{kind} must be a JSON object, got {type(payload).__name__}")
    return dict(payload)


@dataclass(frozen=True)
class EngineConfig:
    """Spec-scoped engine policy: which signature backend, whether to
    compress the signature universe, and whether to use the pathset cache.

    Defaults match the library defaults (``auto`` backend, compression on,
    cache on, serial search), so a default-constructed config computes
    exactly what the global-policy path computes out of the box — without
    touching globals.

    ``search_jobs`` shards each exact-µ subset search across workers
    (0 = all cores, 1 = serial); results are bit-identical for every value,
    so the field is an execution knob, not a semantic one.  Additive in
    schema v2: documents without the field parse with the serial default.

    ``time_budget`` (wall-clock seconds) and ``subset_budget`` (max subsets
    enumerated) bound each subset search cooperatively: on expiry
    ``identifiability()`` truncates at the last fully completed size
    (``stats.budget_exhausted=True``, a certified lower bound) and the census
    queries raise :class:`~repro.exceptions.BudgetExceededError`.  Both are
    additive too — v1/v2 documents without them parse unchanged and mean
    "unbounded".

    ``cache_maxsize`` tunes the LRU bound of the process-wide
    :class:`~repro.engine.cache.PathSetCache` a cached scenario enumerates
    through (``None`` — the default and the meaning of documents without the
    field — keeps the current bound).  Like the cache itself the bound is
    process-global: a scenario carrying the knob *resizes* the shared cache
    on first use, which is how a service working set (``repro-serve
    --cache-size``) escapes the historical hard-coded 128 entries.  Additive
    in schema v2, execution-only (never changes any reported value).

    ``kernel`` picks the subset-sweep execution strategy (``"auto"`` /
    ``"scalar"`` / ``"block"``) and ``block_size`` the rows per block-kernel
    chunk (``None`` = library default).  Like ``search_jobs`` these are
    execution knobs — results are bit-identical for every combination — and
    additive in schema v2: documents without them parse with the ``auto``
    default.
    """

    backend: str = "auto"
    compress: bool = True
    cache: bool = True
    search_jobs: int = 1
    time_budget: Optional[float] = None
    subset_budget: Optional[int] = None
    cache_maxsize: Optional[int] = None
    kernel: str = "auto"
    block_size: Optional[int] = None

    def __post_init__(self) -> None:
        from repro.engine.backends import normalize_backend_spec
        from repro.engine.signatures import KERNELS

        object.__setattr__(self, "backend", normalize_backend_spec(self.backend))
        object.__setattr__(self, "compress", bool(self.compress))
        object.__setattr__(self, "cache", bool(self.cache))
        jobs = self.search_jobs
        if isinstance(jobs, bool) or not isinstance(jobs, int) or jobs < 0:
            raise SpecError(
                f"engine search_jobs must be an int >= 0 (0 = all cores), "
                f"got {jobs!r}"
            )
        kernel = self.kernel
        if not isinstance(kernel, str) or kernel.strip().lower() not in KERNELS:
            raise SpecError(
                f"engine kernel must be one of {list(KERNELS)}, got {kernel!r}"
            )
        object.__setattr__(self, "kernel", kernel.strip().lower())
        if self.block_size is not None and (
            isinstance(self.block_size, bool)
            or not isinstance(self.block_size, int)
            or self.block_size < 1
        ):
            raise SpecError(
                f"engine block_size must be an int >= 1 or null, "
                f"got {self.block_size!r}"
            )
        if self.time_budget is not None:
            if (
                isinstance(self.time_budget, bool)
                or not isinstance(self.time_budget, (int, float))
                or self.time_budget <= 0
            ):
                raise SpecError(
                    f"engine time_budget must be a positive number of "
                    f"seconds or null, got {self.time_budget!r}"
                )
            object.__setattr__(self, "time_budget", float(self.time_budget))
        if self.subset_budget is not None and (
            isinstance(self.subset_budget, bool)
            or not isinstance(self.subset_budget, int)
            or self.subset_budget <= 0
        ):
            raise SpecError(
                f"engine subset_budget must be a positive int or null, "
                f"got {self.subset_budget!r}"
            )
        if self.cache_maxsize is not None and (
            isinstance(self.cache_maxsize, bool)
            or not isinstance(self.cache_maxsize, int)
            or self.cache_maxsize < 1
        ):
            raise SpecError(
                f"engine cache_maxsize must be an int >= 1 or null, "
                f"got {self.cache_maxsize!r}"
            )

    @classmethod
    def from_policy(cls, cache: bool = True) -> "EngineConfig":
        """Capture the current process-global engine policies.

        The bridge for legacy call sites: a spec stamped with the captured
        config computes exactly what the global-policy code would have,
        wherever the spec later runs (including pool workers).
        """
        from repro.engine.backends import select_backend
        from repro.engine.compress import compression_enabled
        from repro.engine.signatures import (
            select_block_size,
            select_kernel,
            select_search_jobs,
        )
        from repro.resilience.budget import current_budget_limits

        time_budget, subset_budget = current_budget_limits()
        return cls(
            backend=select_backend(),
            compress=compression_enabled(),
            cache=cache,
            search_jobs=select_search_jobs(),
            time_budget=time_budget,
            subset_budget=subset_budget,
            kernel=select_kernel(),
            block_size=select_block_size(),
        )

    def budget(self) -> Optional[Budget]:
        """A fresh per-search :class:`~repro.resilience.Budget` from this
        config's limits, or ``None`` when both are unset."""
        if self.time_budget is None and self.subset_budget is None:
            return None
        from repro.resilience.budget import Budget

        return Budget(self.time_budget, self.subset_budget)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "backend": self.backend,
            "compress": self.compress,
            "cache": self.cache,
            "search_jobs": self.search_jobs,
            "time_budget": self.time_budget,
            "subset_budget": self.subset_budget,
            "cache_maxsize": self.cache_maxsize,
            "kernel": self.kernel,
            "block_size": self.block_size,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "EngineConfig":
        data = _expect_mapping(payload, "engine config")
        unknown = set(data) - {
            "backend",
            "compress",
            "cache",
            "search_jobs",
            "time_budget",
            "subset_budget",
            "cache_maxsize",
            "kernel",
            "block_size",
        }
        if unknown:
            raise SpecError(f"unknown engine config fields {sorted(unknown)}")
        return cls(
            backend=data.get("backend", "auto"),
            compress=data.get("compress", True),
            cache=data.get("cache", True),
            search_jobs=data.get("search_jobs", 1),
            time_budget=data.get("time_budget"),
            subset_budget=data.get("subset_budget"),
            cache_maxsize=data.get("cache_maxsize"),
            kernel=data.get("kernel", "auto"),
            block_size=data.get("block_size"),
        )


@dataclass(frozen=True)
class TopologySpec:
    """A named topology source plus its JSON-normal parameters."""

    name: str
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SpecError(f"topology name must be a non-empty string, got {self.name!r}")
        object.__setattr__(self, "params", _freeze_params(self.params, "topology"))

    @classmethod
    def from_graph(cls, graph) -> "TopologySpec":
        """A literal spec for an in-memory graph (nodes/edges listed in
        iteration order, so the rebuilt graph iterates identically)."""
        return cls(
            name="graph",
            params={
                "directed": bool(graph.is_directed()),
                "name": graph.name or "",
                "nodes": [encode_node(node) for node in graph.nodes],
                "edges": [
                    [encode_node(u), encode_node(v)] for u, v in graph.edges
                ],
            },
        )

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TopologySpec":
        data = _expect_mapping(payload, "topology spec")
        unknown = set(data) - {"name", "params"}
        if unknown:
            raise SpecError(f"unknown topology spec fields {sorted(unknown)}")
        if "name" not in data:
            raise SpecError("topology spec requires a 'name'")
        return cls(name=data["name"], params=data.get("params") or {})


@dataclass(frozen=True)
class PlacementSpec:
    """A named monitor-placement strategy plus its parameters."""

    strategy: str
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.strategy or not isinstance(self.strategy, str):
            raise SpecError(
                f"placement strategy must be a non-empty string, got {self.strategy!r}"
            )
        object.__setattr__(self, "params", _freeze_params(self.params, "placement"))

    @classmethod
    def from_placement(cls, placement) -> "PlacementSpec":
        """A literal spec for an in-memory :class:`MonitorPlacement`."""
        return cls(
            strategy="explicit",
            params={
                "inputs": [encode_node(n) for n in sorted(placement.inputs, key=repr)],
                "outputs": [encode_node(n) for n in sorted(placement.outputs, key=repr)],
            },
        )

    def to_dict(self) -> Dict[str, Any]:
        return {"strategy": self.strategy, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "PlacementSpec":
        data = _expect_mapping(payload, "placement spec")
        unknown = set(data) - {"strategy", "params"}
        if unknown:
            raise SpecError(f"unknown placement spec fields {sorted(unknown)}")
        if "strategy" not in data:
            raise SpecError("placement spec requires a 'strategy'")
        return cls(strategy=data["strategy"], params=data.get("params") or {})


@dataclass(frozen=True)
class RoutingSpec:
    """Routing mechanism plus the enumeration limits."""

    mechanism: str = "CSP"
    cutoff: Optional[int] = None
    max_paths: Optional[int] = None

    def __post_init__(self) -> None:
        try:
            parsed = RoutingMechanism.parse(self.mechanism)
        except ValueError as exc:
            raise SpecError(str(exc)) from exc
        object.__setattr__(self, "mechanism", parsed.value)
        # Out-of-range limits used to surface only deep inside enumeration
        # (a ValueError mid-analysis); reject them at parse time so a bad
        # document is a SpecError at the boundary, not a 500 in a worker.
        for name in ("cutoff", "max_paths"):
            value = getattr(self, name)
            if value is not None and (
                isinstance(value, bool) or not isinstance(value, int) or value < 1
            ):
                raise SpecError(
                    f"routing {name} must be an int >= 1 or null, got {value!r}"
                )

    @property
    def mechanism_enum(self) -> RoutingMechanism:
        return RoutingMechanism.parse(self.mechanism)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "mechanism": self.mechanism,
            "cutoff": self.cutoff,
            "max_paths": self.max_paths,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RoutingSpec":
        data = _expect_mapping(payload, "routing spec")
        unknown = set(data) - {"mechanism", "cutoff", "max_paths"}
        if unknown:
            raise SpecError(f"unknown routing spec fields {sorted(unknown)}")
        return cls(
            mechanism=data.get("mechanism", "CSP"),
            cutoff=data.get("cutoff"),
            max_paths=data.get("max_paths"),
        )


@dataclass(frozen=True)
class UniverseSpec:
    """The failure universe a scenario's analyses range over (schema v2).

    ``kind`` is ``"node"`` (the paper's measure, the default), ``"link"``,
    or ``"srlg"``; SRLG universes carry their ``groups`` — a mapping of group
    name to the member links, each link a two-item ``[u, v]`` list in the
    literal-spec node codec.
    """

    kind: str = "node"
    groups: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in UNIVERSE_KINDS:
            raise SpecError(
                f"unknown failure universe kind {self.kind!r}; "
                f"expected one of {UNIVERSE_KINDS}"
            )
        groups = _freeze_params(self.groups, "failure universe")
        if self.kind == "srlg":
            if not groups:
                raise SpecError(
                    "an 'srlg' universe needs a non-empty 'groups' mapping of "
                    "group name -> [[u, v], ...] member links"
                )
            for name, members in groups.items():
                if not isinstance(members, list) or not members:
                    raise SpecError(
                        f"srlg group {name!r} must be a non-empty list of "
                        f"[u, v] links, got {members!r}"
                    )
                for link in members:
                    if not isinstance(link, list) or len(link) != 2:
                        raise SpecError(
                            f"srlg group {name!r} member {link!r} is not a "
                            "[u, v] link"
                        )
        elif groups:
            raise SpecError(
                f"a {self.kind!r} universe takes no srlg groups, got "
                f"{sorted(groups)}"
            )
        object.__setattr__(self, "groups", groups)

    def decoded_groups(self) -> Dict[str, Tuple[Tuple[Any, Any], ...]]:
        """The groups with node labels decoded (lists back to tuples)."""
        return {
            name: tuple(
                (decode_node(link[0]), decode_node(link[1])) for link in members
            )
            for name, members in self.groups.items()
        }

    def resolve(self, pathset) -> Any:
        """The :class:`~repro.failures.FailureUniverse` this spec names,
        built (and memoised) over ``pathset`` — the one place the
        spec-to-universe translation is spelled."""
        return pathset.universe(self.kind, groups=self.decoded_groups() or None)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "groups": dict(self.groups)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "UniverseSpec":
        data = _expect_mapping(payload, "failure universe")
        unknown = set(data) - {"kind", "groups"}
        if unknown:
            raise SpecError(f"unknown failure universe fields {sorted(unknown)}")
        return cls(kind=data.get("kind", "node"), groups=data.get("groups") or {})


@dataclass(frozen=True)
class FailureModel:
    """Failure-sampling defaults for the localisation campaign analysis,
    plus the failure universe every analysis of the scenario ranges over."""

    model: str = "uniform"
    size: int = 1
    n_trials: int = 10
    universe: UniverseSpec = field(default_factory=UniverseSpec)

    def __post_init__(self) -> None:
        if self.model != "uniform":
            raise SpecError(
                f"unknown failure model {self.model!r}; only 'uniform' is "
                "currently implemented"
            )
        if self.size < 0:
            raise SpecError(f"failure size must be >= 0, got {self.size}")
        if self.n_trials < 1:
            raise SpecError(f"failure n_trials must be >= 1, got {self.n_trials}")
        if not isinstance(self.universe, UniverseSpec):
            # Accept the JSON spellings too: None (and a mapping) mean what
            # they mean in a serialised document — node mode by default.
            object.__setattr__(
                self, "universe", UniverseSpec.from_dict(self.universe or {})
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "model": self.model,
            "size": self.size,
            "n_trials": self.n_trials,
            "universe": self.universe.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FailureModel":
        data = _expect_mapping(payload, "failure model")
        unknown = set(data) - {"model", "size", "n_trials", "universe"}
        if unknown:
            raise SpecError(f"unknown failure model fields {sorted(unknown)}")
        return cls(
            model=data.get("model", "uniform"),
            size=data.get("size", 1),
            n_trials=data.get("n_trials", 10),
            # Absent in schema-v1 documents: upgrade to the node universe.
            universe=UniverseSpec.from_dict(data.get("universe") or {}),
        )


@dataclass(frozen=True)
class AnalysisSpec:
    """One analysis request: a facade method name plus keyword parameters."""

    analysis: str
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.analysis or not isinstance(self.analysis, str):
            raise SpecError(
                f"analysis name must be a non-empty string, got {self.analysis!r}"
            )
        object.__setattr__(self, "params", _freeze_params(self.params, "analysis"))

    def to_dict(self) -> Dict[str, Any]:
        return {"analysis": self.analysis, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, payload: Any) -> "AnalysisSpec":
        if isinstance(payload, str):  # "mu" shorthand
            return cls(analysis=payload)
        data = _expect_mapping(payload, "analysis spec")
        unknown = set(data) - {"analysis", "params"}
        if unknown:
            raise SpecError(f"unknown analysis spec fields {sorted(unknown)}")
        if "analysis" not in data:
            raise SpecError("analysis spec requires an 'analysis' name")
        return cls(analysis=data["analysis"], params=data.get("params") or {})


_DELTA_FIELDS = {
    "add_links",
    "remove_links",
    "add_inputs",
    "remove_inputs",
    "add_outputs",
    "remove_outputs",
    "srlg_groups",
    "label",
}


@dataclass(frozen=True)
class DeltaSpec:
    """A JSON-round-trippable scenario delta for :meth:`Scenario.evolve
    <repro.api.scenario.Scenario.evolve>`.

    Describes a small change to a live scenario — link flaps, monitor
    joins/leaves, an SRLG re-definition — without restating the scenario::

        {
          "add_links":      [["u", "v"], ...],
          "remove_links":   [["u", "v"], ...],
          "add_inputs":     ["u", ...],
          "remove_inputs":  ["u", ...],
          "add_outputs":    ["u", ...],
          "remove_outputs": ["u", ...],
          "srlg_groups":    null,      # or {"name": [["u","v"], ...], ...}
          "label": ""                  # optional display name
        }

    The schema is **additive**: deltas are a standalone document type (the
    ``--churn`` driver's ``deltas`` entries), and :class:`ScenarioSpec`
    documents are untouched — existing v2 specs parse unchanged.  Node
    labels use the literal-spec codec (tuples as lists), links are endpoint
    pairs in either orientation for undirected topologies, and
    ``srlg_groups`` is ``None`` ("keep the scenario's universe") or a full
    replacement group mapping, which switches the evolved scenario to an
    SRLG universe over those groups.  The node universe itself is fixed —
    links may only connect existing nodes and monitors must name existing
    nodes.  Every edit must be a real change (removals must exist, additions
    must not), which keeps :meth:`inverse` exact.
    """

    add_links: Tuple[Tuple[Any, Any], ...] = ()
    remove_links: Tuple[Tuple[Any, Any], ...] = ()
    add_inputs: Tuple[Any, ...] = ()
    remove_inputs: Tuple[Any, ...] = ()
    add_outputs: Tuple[Any, ...] = ()
    remove_outputs: Tuple[Any, ...] = ()
    srlg_groups: Optional[Dict[str, Any]] = None
    label: str = ""

    def __post_init__(self) -> None:
        for attribute in ("add_links", "remove_links"):
            links = []
            for link in getattr(self, attribute):
                pair = tuple(link)
                if len(pair) != 2:
                    raise SpecError(
                        f"delta {attribute} entry {link!r} is not a (u, v) link"
                    )
                links.append(pair)
            if len(set(links)) != len(links):
                raise SpecError(f"delta {attribute} lists a link twice")
            object.__setattr__(self, attribute, tuple(links))
        for attribute in (
            "add_inputs", "remove_inputs", "add_outputs", "remove_outputs"
        ):
            nodes = tuple(getattr(self, attribute))
            if len(set(nodes)) != len(nodes):
                raise SpecError(f"delta {attribute} lists a node twice")
            object.__setattr__(self, attribute, nodes)
        if set(self.add_links) & set(self.remove_links):
            raise SpecError("a delta cannot both add and remove the same link")
        if set(self.add_inputs) & set(self.remove_inputs):
            raise SpecError("a delta cannot both add and remove the same input")
        if set(self.add_outputs) & set(self.remove_outputs):
            raise SpecError("a delta cannot both add and remove the same output")
        if self.srlg_groups is not None:
            # Reuse the universe-spec validation (and its JSON freezing).
            validated = UniverseSpec(kind="srlg", groups=self.srlg_groups)
            object.__setattr__(self, "srlg_groups", validated.groups)
        if not isinstance(self.label, str):
            raise SpecError(f"delta label must be a string, got {self.label!r}")

    def is_noop(self) -> bool:
        """True when the delta changes nothing."""
        return self.srlg_groups is None and not (
            self.add_links
            or self.remove_links
            or self.add_inputs
            or self.remove_inputs
            or self.add_outputs
            or self.remove_outputs
        )

    def fingerprint(self) -> Tuple[Any, ...]:
        """A hashable content key (order-insensitive, label-excluded) used
        by the evolve-keyed :class:`~repro.engine.cache.PathSetCache`."""
        groups: Optional[Tuple[Tuple[str, str], ...]] = None
        if self.srlg_groups is not None:
            groups = tuple(
                sorted(
                    (name, json.dumps(members, sort_keys=True))
                    for name, members in self.srlg_groups.items()
                )
            )
        return (
            tuple(sorted(self.add_links, key=repr)),
            tuple(sorted(self.remove_links, key=repr)),
            tuple(sorted(self.add_inputs, key=repr)),
            tuple(sorted(self.remove_inputs, key=repr)),
            tuple(sorted(self.add_outputs, key=repr)),
            tuple(sorted(self.remove_outputs, key=repr)),
            groups,
        )

    def inverse(
        self, previous_universe: Optional[UniverseSpec] = None
    ) -> "DeltaSpec":
        """The delta undoing this one (adds and removes swapped).

        An SRLG re-definition is only invertible when the pre-delta universe
        — passed as ``previous_universe`` — was itself an SRLG universe to
        restore; anything else raises :class:`SpecError`.
        """
        groups: Optional[Dict[str, Any]] = None
        if self.srlg_groups is not None:
            if previous_universe is None or previous_universe.kind != "srlg":
                raise SpecError(
                    "inverting an SRLG re-definition needs the previous "
                    "universe to restore, and it must be an srlg universe"
                )
            groups = dict(previous_universe.groups)
        return DeltaSpec(
            add_links=self.remove_links,
            remove_links=self.add_links,
            add_inputs=self.remove_inputs,
            remove_inputs=self.add_inputs,
            add_outputs=self.remove_outputs,
            remove_outputs=self.add_outputs,
            srlg_groups=groups,
            label=f"inverse({self.label})" if self.label else "",
        )

    # -- serialisation ------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "add_links": [[encode_node(u), encode_node(v)] for u, v in self.add_links],
            "remove_links": [
                [encode_node(u), encode_node(v)] for u, v in self.remove_links
            ],
            "add_inputs": [encode_node(n) for n in self.add_inputs],
            "remove_inputs": [encode_node(n) for n in self.remove_inputs],
            "add_outputs": [encode_node(n) for n in self.add_outputs],
            "remove_outputs": [encode_node(n) for n in self.remove_outputs],
            "srlg_groups": dict(self.srlg_groups)
            if self.srlg_groups is not None
            else None,
            "label": self.label,
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DeltaSpec":
        data = _expect_mapping(payload, "delta spec")
        unknown = set(data) - _DELTA_FIELDS
        if unknown:
            raise SpecError(f"unknown delta spec fields {sorted(unknown)}")

        def links(field_name: str) -> Tuple[Tuple[Any, Any], ...]:
            entries = data.get(field_name) or []
            if not isinstance(entries, Sequence) or isinstance(entries, str):
                raise SpecError(f"delta {field_name} must be a list of [u, v] links")
            decoded = []
            for link in entries:
                if not isinstance(link, Sequence) or isinstance(link, str) or len(link) != 2:
                    raise SpecError(
                        f"delta {field_name} entry {link!r} is not a [u, v] link"
                    )
                decoded.append((decode_node(link[0]), decode_node(link[1])))
            return tuple(decoded)

        def nodes(field_name: str) -> Tuple[Any, ...]:
            entries = data.get(field_name) or []
            if not isinstance(entries, Sequence) or isinstance(entries, str):
                raise SpecError(f"delta {field_name} must be a list of nodes")
            return tuple(decode_node(node) for node in entries)

        return cls(
            add_links=links("add_links"),
            remove_links=links("remove_links"),
            add_inputs=nodes("add_inputs"),
            remove_inputs=nodes("remove_inputs"),
            add_outputs=nodes("add_outputs"),
            remove_outputs=nodes("remove_outputs"),
            srlg_groups=data.get("srlg_groups"),
            label=data.get("label", ""),
        )

    @classmethod
    def from_json(cls, document: str) -> "DeltaSpec":
        try:
            payload = json.loads(document)
        except json.JSONDecodeError as exc:
            raise SpecError(f"invalid delta JSON: {exc}") from exc
        return cls.from_dict(payload)


_SPEC_FIELDS = {
    "schema_version",
    "label",
    "topology",
    "placement",
    "routing",
    "failures",
    "engine",
    "seed",
    "analyses",
}


@dataclass(frozen=True)
class ScenarioSpec:
    """The complete, serialisable description of one tomography scenario."""

    topology: TopologySpec
    placement: PlacementSpec
    routing: RoutingSpec = field(default_factory=RoutingSpec)
    failures: FailureModel = field(default_factory=FailureModel)
    engine: EngineConfig = field(default_factory=EngineConfig)
    seed: SeedLike = None
    analyses: Tuple[AnalysisSpec, ...] = (AnalysisSpec("mu"),)
    label: str = ""

    def __post_init__(self) -> None:
        if self.seed is not None and not isinstance(self.seed, (int, str)):
            raise SpecError(f"seed must be an int, a string or None, got {self.seed!r}")
        object.__setattr__(self, "analyses", tuple(self.analyses))

    # -- construction helpers ----------------------------------------------
    @property
    def mechanism(self) -> RoutingMechanism:
        """The routing mechanism as an enum member."""
        return self.routing.mechanism_enum

    def with_seed(self, seed: SeedLike) -> "ScenarioSpec":
        return replace(self, seed=seed)

    def with_engine(self, engine: EngineConfig) -> "ScenarioSpec":
        return replace(self, engine=engine)

    def with_trials(self, n_trials: int) -> "ScenarioSpec":
        """Override the failure-campaign trial count (the CLI ``--trials``)."""
        return replace(self, failures=replace(self.failures, n_trials=n_trials))

    def with_universe(self, universe: "UniverseSpec | str") -> "ScenarioSpec":
        """Override the failure universe (how the CLI ``--universe`` reaches
        the paper-table drivers' per-trial specs)."""
        if isinstance(universe, str):
            universe = UniverseSpec(kind=universe)
        return replace(self, failures=replace(self.failures, universe=universe))

    def display_name(self) -> str:
        if self.label:
            return self.label
        return (
            f"{self.topology.name}/{self.placement.strategy}/{self.routing.mechanism}"
        )

    def build(self) -> "Scenario":
        """Materialise the spec into a live :class:`Scenario` facade."""
        from repro.api.scenario import Scenario

        return Scenario(self)

    # -- serialisation ------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "label": self.label,
            "topology": self.topology.to_dict(),
            "placement": self.placement.to_dict(),
            "routing": self.routing.to_dict(),
            "failures": self.failures.to_dict(),
            "engine": self.engine.to_dict(),
            "seed": self.seed,
            "analyses": [analysis.to_dict() for analysis in self.analyses],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioSpec":
        data = _expect_mapping(payload, "scenario spec")
        unknown = set(data) - _SPEC_FIELDS
        if unknown:
            raise SpecError(f"unknown scenario spec fields {sorted(unknown)}")
        version = data.get("schema_version", SCHEMA_VERSION)
        if version not in SUPPORTED_SCHEMA_VERSIONS:
            raise SpecError(
                f"unsupported scenario schema version {version!r}; "
                f"this library speaks versions {SUPPORTED_SCHEMA_VERSIONS} "
                f"(current: {SCHEMA_VERSION})"
            )
        if "topology" not in data or "placement" not in data:
            raise SpecError("scenario spec requires 'topology' and 'placement'")
        analyses_payload: Sequence[Any] = data.get("analyses") or ["mu"]
        return cls(
            topology=TopologySpec.from_dict(data["topology"]),
            placement=PlacementSpec.from_dict(data["placement"]),
            routing=RoutingSpec.from_dict(data.get("routing") or {}),
            failures=FailureModel.from_dict(data.get("failures") or {}),
            engine=EngineConfig.from_dict(data.get("engine") or {}),
            seed=data.get("seed"),
            analyses=tuple(
                AnalysisSpec.from_dict(entry) for entry in analyses_payload
            ),
            label=data.get("label", ""),
        )

    @classmethod
    def from_json(cls, document: str) -> "ScenarioSpec":
        try:
            payload = json.loads(document)
        except json.JSONDecodeError as exc:
            raise SpecError(f"invalid scenario JSON: {exc}") from exc
        return cls.from_dict(payload)

    @classmethod
    def from_file(cls, path: str) -> "ScenarioSpec":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())


def load_spec_batch(document: str) -> Tuple[ScenarioSpec, ...]:
    """Parse a ``--spec`` document into scenario specs.

    Accepts a bare spec object, a bare JSON list of specs, or a wrapper
    ``{"scenarios": [...]}`` document.
    """
    try:
        payload = json.loads(document)
    except json.JSONDecodeError as exc:
        raise SpecError(f"invalid spec document: {exc}") from exc
    if isinstance(payload, Mapping) and "scenarios" in payload:
        unknown = set(payload) - {"scenarios"}
        if unknown:
            raise SpecError(f"unknown spec document fields {sorted(unknown)}")
        entries = payload["scenarios"]
    elif isinstance(payload, list):
        entries = payload
    else:
        entries = [payload]
    if not isinstance(entries, list) or not entries:
        raise SpecError("spec document contains no scenarios")
    return tuple(ScenarioSpec.from_dict(entry) for entry in entries)


if False:  # pragma: no cover - typing-only import without a runtime cycle
    from repro.api.scenario import Scenario
