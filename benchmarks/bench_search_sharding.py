"""PR 6 perf trajectory: sharded subset-search inside a single µ computation.

Three cells on the Table 3 topology (Claranet under the log-N Agrid boost),
every one asserting **hard bit-parity** between ``search_jobs=1`` and
``search_jobs=4`` — same µ, same witness pair, same ``searched_up_to``:

* **natural node / link cells (d = 3)** — the real Table 3 µ computations.
  These terminate at the first collision, typically long before the size-3
  frontier grows past :data:`~repro.engine.signatures.MIN_SHARDED_FRONTIER`,
  so they measure that the sharding knob costs nothing when it does not
  engage (the executor is created lazily, per size, only for frontiers worth
  splitting).
* **residual certification cell (d = 4, link universe)** — the cell the
  speedup claim is made on.  The natural d-4 link µ is computed first; the
  witness links are excised from the universe and the *residual* link set is
  certified up to size 3.  No collision survives, so the sweep walks the
  whole ``C(n, 3)`` frontier — the exhaustive-certification workload the
  sharded search exists for, and large enough that every size-3 scan
  actually fans out.

Wall-clock speedup is asserted only on hosts with >= 4 cores (the fork
process pool cannot beat serial on fewer), via ``BENCH_SHARD_MIN_SPEEDUP``
(default 1.5); the parity assertions are hard everywhere, including
single-core CI runners where the sharded run still executes the full
partition/merge machinery.
"""

from __future__ import annotations

import math
import os
import time
from typing import Dict, Optional

from conftest import run_once

from repro.agrid.algorithm import agrid
from repro.engine.signatures import MIN_SHARDED_FRONTIER
from repro.routing.paths import enumerate_paths
from repro.topology import zoo

#: Job count for the sharded side of every cell.
SHARD_JOBS = 4

#: Hard floor on the certification-cell speedup, applied only when the host
#: has at least SHARD_JOBS cores (speedup on fewer cores is physically
#: impossible for a CPU-bound sweep; parity is still asserted).
MIN_SHARD_SPEEDUP = float(os.environ.get("BENCH_SHARD_MIN_SPEEDUP", "1.5"))


def _timed(engine, max_size: Optional[int], nodes, jobs: int):
    start = time.perf_counter()
    result = engine.identifiability(
        max_size=max_size, nodes=nodes, search_jobs=jobs
    )
    return result, time.perf_counter() - start


def _cell(engine, max_size: Optional[int] = None, nodes=None) -> Dict[str, object]:
    serial, serial_seconds = _timed(engine, max_size, nodes, 1)
    sharded, sharded_seconds = _timed(engine, max_size, nodes, SHARD_JOBS)
    # Bit-parity: dataclass equality covers value, witness, searched_up_to
    # and exhausted_search (stats are compare-excluded diagnostics).
    assert sharded == serial, (serial, sharded)
    return {
        "mu": serial.value,
        "witness": serial.witness,
        "searched_up_to": serial.searched_up_to,
        "serial_seconds": serial_seconds,
        "sharded_seconds": sharded_seconds,
        "speedup": (
            serial_seconds / sharded_seconds
            if sharded_seconds
            else float("inf")
        ),
        "serial_stats": serial.stats.as_dict(),
        "sharded_stats": sharded.stats.as_dict(),
    }


def _sharding_suite(seed: int) -> Dict[str, object]:
    graph = zoo.load("claranet")
    measured: Dict[str, object] = {}

    # Natural Table 3 cells: the d-3 boosted graph, node and link universes.
    boost3 = agrid(graph, 3, rng=seed)
    pathset3 = enumerate_paths(boost3.boosted, boost3.placement_boosted)
    for kind in ("node", "link"):
        measured[f"natural_{kind}_d3"] = _cell(pathset3.engine(universe=kind))

    # Certification cell: excise the natural d-4 link witness, certify the
    # residual universe up to size 3 (an exhaustive C(n, 3) sweep).
    boost4 = agrid(graph, 4, rng=seed)
    pathset4 = enumerate_paths(boost4.boosted, boost4.placement_boosted)
    engine = pathset4.engine(universe="link")
    natural = engine.identifiability()
    excised = natural.witness.first | natural.witness.second
    residual = [link for link in engine.nodes if link not in excised]
    cell = _cell(engine, max_size=3, nodes=residual)
    cell["natural_mu"] = natural.value
    cell["n_links"] = len(engine.nodes)
    cell["n_residual"] = len(residual)
    cell["frontier_size_3"] = math.comb(len(residual), 3)
    measured["residual_certification_link_d4"] = cell
    return measured


def test_search_sharding_claranet(benchmark, bench_seed):
    measured = run_once(benchmark, _sharding_suite, bench_seed)

    cert = measured["residual_certification_link_d4"]
    # The certification sweep must actually certify: no collision up to the
    # cap, so µ (restricted) reaches the cap and the whole frontier was
    # walked — by both executions, identically.
    assert cert["mu"] == cert["searched_up_to"] == 3, cert
    assert cert["witness"] is None, cert
    # ... and the size-3 frontier must be large enough that the sharded run
    # really fanned out (lazy executor threshold), else the cell measures
    # nothing.
    assert cert["frontier_size_3"] >= MIN_SHARDED_FRONTIER, cert
    assert cert["sharded_stats"]["jobs"] == SHARD_JOBS, cert
    assert cert["sharded_stats"]["shard_subsets"], cert
    # Both sweeps enumerated the same number of subsets (the merge never
    # drops or duplicates work).
    assert (
        cert["sharded_stats"]["subsets_enumerated"]
        == cert["serial_stats"]["subsets_enumerated"]
    ), cert

    n_cores = os.cpu_count() or 1
    cell_speedup = cert["speedup"]
    if n_cores >= SHARD_JOBS:
        assert cell_speedup >= MIN_SHARD_SPEEDUP, (
            f"certification cell speedup {cell_speedup:.2f}x at "
            f"search_jobs={SHARD_JOBS} on {n_cores} cores is below the "
            f"{MIN_SHARD_SPEEDUP}x bar (tune BENCH_SHARD_MIN_SPEEDUP on "
            "noisy runners)"
        )

    benchmark.extra_info["experiment"] = (
        "Sharded subset-search: serial vs search_jobs=4 on Claranet cells "
        "(natural d-3 node/link + d-4 residual link certification)"
    )
    benchmark.extra_info["n_cores"] = n_cores
    benchmark.extra_info["speedup_asserted"] = n_cores >= SHARD_JOBS
    benchmark.extra_info["measured"] = measured
