"""Exact maximal identifiability (Definitions 2.1 and 2.2).

A node universe ``N`` is *k-identifiable* with respect to a path set ``P``
iff for all ``U, W ⊆ N`` with ``U △ W ≠ ∅`` and ``|U|, |W| ≤ k`` it holds that
``P(U) △ P(W) ≠ ∅``.  The *maximal identifiability* µ is the largest such k.

Exact algorithm
---------------

Enumerate node subsets in order of increasing size (including the empty set —
a node crossed by no path is confusable with ∅ and forces µ = 0).  Each
subset's *signature* is the set of paths it touches.  The first size ``s`` at
which a signature collision occurs yields ``µ = s − 1``:

* a collision between subsets of sizes ``s₁ ≤ s₂ = s`` falsifies
  ``s``-identifiability (both sets have size ≤ s and differ);
* no collision occurred among subsets of size < s (they were enumerated
  earlier), so ``(s−1)``-identifiability holds;
* monotonicity (noted after Definition 2.2) does the rest.

This module is a thin client of the :mod:`repro.engine` subsystem: the search
itself — equivalence-class fast paths, incremental DFS with prefix unions,
subset-dominance pruning, interchangeable python/numpy signature backends —
lives in :class:`repro.engine.signatures.SignatureEngine`.  The search is
capped by the structural bounds of Section 3 (see
:func:`repro.core.bounds.structural_upper_bound`), so the computation is exact
whenever the cap itself is a correct upper bound — which the paper proves for
CSP and CAP⁻ — and otherwise explores up to ``max_size`` subsets.
"""

from __future__ import annotations

import warnings
from typing import Dict, FrozenSet, Iterable, Optional, Tuple, Union

from repro._typing import AnyGraph, Node
from repro.core.bounds import structural_upper_bound
from repro.engine.backends import BackendSpec
from repro.engine.signatures import ConfusablePair, IdentifiabilityResult
from repro.exceptions import IdentifiabilityError
from repro.failures.universe import FailureUniverse
from repro.resilience.budget import Budget
from repro.monitors.placement import MonitorPlacement
from repro.routing.mechanisms import RoutingMechanism
from repro.routing.paths import PathSet, enumerate_paths

#: How the ``universe=`` argument of the thin clients is spelled: ``None``
#: (node mode, the historical default), a kind name (``"node"``/``"link"``),
#: or a built :class:`~repro.failures.FailureUniverse` (required for SRLGs,
#: which carry their groups).
UniverseLike = Optional[Union[FailureUniverse, str]]

__all__ = [
    "ConfusablePair",
    "IdentifiabilityResult",
    "maximal_identifiability_detailed",
    "maximal_identifiability",
    "is_k_identifiable",
    "find_confusable_pair",
    "mu",
    "mu_detailed",
    "resolve_universe",
    "separability_matrix",
]


def resolve_universe(pathset: PathSet, universe: UniverseLike) -> FailureUniverse:
    """Canonicalise a ``universe=`` argument into a :class:`FailureUniverse`.

    ``None`` and ``"node"`` resolve to the pathset's node universe; a kind
    name resolves through :meth:`PathSet.universe` (memoised); a
    :class:`FailureUniverse` instance passes through after an ownership
    check (:meth:`FailureUniverse.check_built_over`) — its masks index the
    owner's path order, and a universe carried over from a different path
    set (even one with the same path count) would silently compute wrong
    values.
    """
    if universe is None or isinstance(universe, str):
        return pathset.universe(universe or "node")
    if not isinstance(universe, FailureUniverse):
        raise IdentifiabilityError(
            f"universe must be None, a kind name or a FailureUniverse, "
            f"got {type(universe).__name__}"
        )
    universe.check_built_over(pathset)
    return universe


def maximal_identifiability_detailed(
    pathset: PathSet,
    max_size: Optional[int] = None,
    nodes: Optional[Iterable[Node]] = None,
    backend: BackendSpec = None,
    compress: Optional[bool] = None,
    universe: UniverseLike = None,
    search_jobs: Optional[int] = None,
    budget: Optional["Budget"] = None,
    kernel: Optional[str] = None,
    block_size: Optional[int] = None,
) -> IdentifiabilityResult:
    """Compute µ with full diagnostics.

    Parameters
    ----------
    pathset:
        The measurement paths.
    max_size:
        Cap on the subset size explored.  ``None`` means the universe size
        (fully exhaustive).  When the cap is reached without a collision the
        result reports ``exhausted_search=True`` and ``value = max_size``.
    nodes:
        Restrict the universe to these elements (defaults to the whole
        universe).  Used by the local-identifiability and what-if analyses.
    backend:
        Signature backend override (see :func:`repro.engine.select_backend`).
    compress:
        Signature-universe compression override (see
        :func:`repro.engine.select_compression`); ``None`` follows the global
        policy.  The computed result is identical either way.
    universe:
        The failure universe µ ranges over: ``None``/``"node"`` (the paper's
        node measure, bit-identical to the historical behaviour), ``"link"``,
        or a :class:`~repro.failures.FailureUniverse` built over ``pathset``
        (the SRLG route).  Witnesses are frozensets of that universe's
        elements.
    search_jobs:
        Shard the subset search across workers (``None`` = the global policy,
        0 = all cores, 1 = serial).  Bit-identical results for every value —
        see :func:`repro.engine.search_jobs_policy`.
    budget:
        A :class:`repro.resilience.Budget` bounding the search (``None`` =
        the global :func:`repro.resilience.budget_policy` limits).  On expiry
        the result truncates at the last fully completed subset size with
        ``exhausted_search=False`` and ``stats.budget_exhausted=True`` — a
        certified lower bound, same semantics as a ``max_size`` cap.
    kernel:
        The sweep execution strategy — ``"scalar"``, ``"block"`` (batched
        block kernel) or ``"auto"`` (``None`` = the global
        :func:`repro.engine.kernel_policy`).  Bit-identical results for every
        value; ``block_size`` tunes the rows per block-kernel chunk.
    """
    resolved = resolve_universe(pathset, universe)
    if nodes is None and (max_size is None or max_size >= 1) and resolved.elements:
        # µ = 0 early exit: an uncovered element is confusable with the
        # empty set, so no subset enumeration (or engine construction) is
        # needed.  Over the node universe this is exactly the historical
        # uncovered-node check.
        uncovered = resolved.uncovered_elements()
        if uncovered:
            witness = ConfusablePair(
                frozenset(), frozenset({min(uncovered, key=repr)})
            )
            return IdentifiabilityResult(
                value=0, witness=witness, searched_up_to=1, exhausted_search=False
            )
    return pathset.engine(backend, compress, universe=resolved).identifiability(
        max_size=max_size, nodes=nodes, search_jobs=search_jobs, budget=budget,
        kernel=kernel, block_size=block_size,
    )


def maximal_identifiability(
    pathset: PathSet,
    max_size: Optional[int] = None,
    nodes: Optional[Iterable[Node]] = None,
    backend: BackendSpec = None,
    compress: Optional[bool] = None,
    universe: UniverseLike = None,
    search_jobs: Optional[int] = None,
    budget: Optional["Budget"] = None,
    kernel: Optional[str] = None,
    block_size: Optional[int] = None,
) -> int:
    """µ of the failure universe with respect to ``pathset`` (Definition 2.2,
    generalised from nodes to arbitrary failure elements)."""
    return maximal_identifiability_detailed(
        pathset, max_size, nodes, backend, compress, universe, search_jobs,
        budget, kernel, block_size,
    ).value


def is_k_identifiable(
    pathset: PathSet,
    k: int,
    nodes: Optional[Iterable[Node]] = None,
    backend: BackendSpec = None,
    universe: UniverseLike = None,
    search_jobs: Optional[int] = None,
) -> bool:
    """Definition 2.1: is the failure universe k-identifiable w.r.t.
    ``pathset``?

    ``k = 0`` is vacuously true.
    """
    if k < 0:
        raise IdentifiabilityError(f"k must be >= 0, got {k}")
    if k == 0:
        return True
    result = maximal_identifiability_detailed(
        pathset, max_size=k, nodes=nodes, backend=backend, universe=universe,
        search_jobs=search_jobs,
    )
    return result.value >= k


def find_confusable_pair(
    pathset: PathSet,
    max_size: Optional[int] = None,
    nodes: Optional[Iterable[Node]] = None,
    backend: BackendSpec = None,
    universe: UniverseLike = None,
    search_jobs: Optional[int] = None,
) -> Optional[ConfusablePair]:
    """Smallest confusable pair (the witness of Section 2.0.1), if any."""
    return maximal_identifiability_detailed(
        pathset, max_size, nodes, backend, universe=universe,
        search_jobs=search_jobs,
    ).witness


def _warn_graph_level_shim(old: str) -> None:
    warnings.warn(
        f"repro.core.{old}(graph, placement, ...) is a legacy shim; build a "
        "repro.Scenario (repro.Scenario.from_components or a ScenarioSpec) "
        "and call its analysis methods instead",
        DeprecationWarning,
        stacklevel=3,
    )


def _graph_level_detailed(
    graph: AnyGraph,
    placement: MonitorPlacement,
    mechanism: RoutingMechanism | str,
    max_size: Optional[int],
    cutoff: Optional[int],
    max_paths: Optional[int],
    backend: BackendSpec,
) -> IdentifiabilityResult:
    """The shared engine room of the deprecated graph-level wrappers and of
    :func:`repro.analysis.verification.verify` (which is not deprecated)."""
    mechanism = RoutingMechanism.parse(mechanism)
    if isinstance(backend, str) or backend is None:
        # The facade path: a spec-scoped engine config capturing the current
        # global policies, so legacy global-policy callers see no change.
        from repro.api.scenario import Scenario
        from repro.api.spec import EngineConfig

        config = EngineConfig.from_policy(cache=False)
        if backend is not None:
            config = EngineConfig(
                backend=backend, compress=config.compress, cache=False
            )
        scenario = Scenario.from_components(
            graph,
            placement,
            mechanism,
            cutoff=cutoff,
            max_paths=max_paths,
            engine=config,
        )
        return scenario.identifiability(max_size=max_size)
    # A concrete SignatureBackend instance cannot ride in a serialisable
    # engine config; run the pathset-level computation directly.
    kwargs = {}
    if cutoff is not None:
        kwargs["cutoff"] = cutoff
    if max_paths is not None:
        kwargs["max_paths"] = max_paths
    pathset = enumerate_paths(graph, placement, mechanism, **kwargs)
    if max_size is None:
        bound = structural_upper_bound(graph, placement, mechanism)
        max_size = bound.combined + 1
    return maximal_identifiability_detailed(pathset, max_size=max_size, backend=backend)


def mu(
    graph: AnyGraph,
    placement: MonitorPlacement,
    mechanism: RoutingMechanism | str = RoutingMechanism.CSP,
    max_size: Optional[int] = None,
    cutoff: Optional[int] = None,
    max_paths: Optional[int] = None,
    backend: BackendSpec = None,
) -> int:
    """End-to-end convenience: µ(G|χ) under a routing mechanism.

    Enumerates ``P(G|χ)``, derives the structural search cap of Section 3 and
    runs the exact computation.  ``max_size`` overrides the cap (useful for
    CAP, where the degree bounds do not apply).

    .. deprecated::
        A thin shim over :meth:`repro.Scenario.mu` — prefer
        ``Scenario.from_components(graph, placement, mechanism).mu().value``
        (bit-identical results).
    """
    _warn_graph_level_shim("mu")
    return _graph_level_detailed(
        graph, placement, mechanism, max_size, cutoff, max_paths, backend
    ).value


def mu_detailed(
    graph: AnyGraph,
    placement: MonitorPlacement,
    mechanism: RoutingMechanism | str = RoutingMechanism.CSP,
    max_size: Optional[int] = None,
    cutoff: Optional[int] = None,
    max_paths: Optional[int] = None,
    backend: BackendSpec = None,
) -> IdentifiabilityResult:
    """Like :func:`mu` but returning the full :class:`IdentifiabilityResult`.

    .. deprecated::
        A thin shim over :meth:`repro.Scenario.mu`; see :func:`mu`.
    """
    _warn_graph_level_shim("mu_detailed")
    return _graph_level_detailed(
        graph, placement, mechanism, max_size, cutoff, max_paths, backend
    )


def separability_matrix(
    pathset: PathSet,
    size: int,
    backend: BackendSpec = None,
    compress: Optional[bool] = None,
    universe: UniverseLike = None,
    search_jobs: Optional[int] = None,
    budget: Optional[Budget] = None,
    kernel: Optional[str] = None,
    block_size: Optional[int] = None,
) -> Dict[Tuple[FrozenSet[Node], FrozenSet[Node]], bool]:
    """Explicit separation table for all pairs of element sets of a given size.

    Mainly a debugging/teaching aid (and used by small-scale tests): maps each
    unordered pair ``{U, W}`` of distinct subsets of the given size to whether
    a measurement path separates them.  Grows combinatorially — callers are
    expected to use it on small universes only.  Signatures are computed once
    per subset by the engine, so each pair costs one key comparison.

    A census has no sound partial result, so an expired ``budget`` raises
    :class:`~repro.exceptions.BudgetExceededError` instead of truncating.
    """
    return pathset.engine(backend, compress, universe=universe).separability_matrix(
        size, search_jobs=search_jobs, budget=budget, kernel=kernel,
        block_size=block_size,
    )
