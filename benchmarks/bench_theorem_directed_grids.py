"""Theorems 4.8 and 4.9 — directed grids and hypergrids under χ_g.

µ(H_n|χ_g) = 2 for n ≥ 3 and µ(H_{n,d}|χ_g) = d; additionally the optimality
observation of Section 4.1 (dropping the monitors on (1,2) and (2,1) breaks
2-identifiability).
"""

from __future__ import annotations

from conftest import run_once

from repro.core.identifiability import mu
from repro.monitors.grid_placement import chi_g, reduced_chi_g
from repro.topology.grids import directed_grid, directed_hypergrid


def _run_directed_grid_suite() -> dict:
    results = {}
    for n in (3, 4, 5):
        grid = directed_grid(n)
        results[f"H_{n}"] = mu(grid, chi_g(grid))
    hypergrid = directed_hypergrid(3, 3)
    results["H_3_3"] = mu(hypergrid, chi_g(hypergrid))
    weakened = directed_grid(3)
    results["H_3_reduced_monitors"] = mu(weakened, reduced_chi_g(weakened))
    return results


def test_theorem_directed_grids(benchmark):
    results = run_once(benchmark, _run_directed_grid_suite)

    assert results["H_3"] == 2            # Theorem 4.8
    assert results["H_4"] == 2
    assert results["H_5"] == 2
    assert results["H_3_3"] == 3          # Theorem 4.9 (d = 3)
    assert results["H_3_reduced_monitors"] < 2  # optimality of chi_g

    benchmark.extra_info["experiment"] = "Theorems 4.8 / 4.9 (directed grids)"
    benchmark.extra_info["measured"] = results
