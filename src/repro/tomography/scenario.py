"""End-to-end failure scenarios: sample failures, measure, localise, score.

This is the "systems" face of the library: given a topology, a monitor
placement and a routing mechanism, a :class:`TomographySession` owns the
measurement path set and can

* simulate random failure sets of a given size,
* produce the Boolean measurement vector each failure generates,
* run the localiser and report whether the failure was uniquely identified,
* aggregate success rates over many trials (used by the examples and the
  ablation benchmarks to connect µ with operational localisation accuracy).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro._typing import AnyGraph, MeasurementVector, Node
from repro.engine.backends import BackendSpec
from repro.engine.signatures import SignatureEngine
from repro.exceptions import IdentifiabilityError
from repro.core.bounds import structural_upper_bound
from repro.core.identifiability import resolve_universe
from repro.failures.universe import FailureUniverse
from repro.monitors.placement import MonitorPlacement
from repro.routing.mechanisms import RoutingMechanism
from repro.routing.paths import PathSet, enumerate_paths
from repro.tomography.boolean_system import measurement_vector
from repro.tomography.inference import (
    LocalizationResult,
    localize_element_failures,
    localize_failures,
)
from repro.utils.seeds import RngLike, resolve_rng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (api sits above)
    from repro.api.scenario import Scenario


@dataclass(frozen=True)
class TrialOutcome:
    """Result of a single simulated failure trial."""

    failure_set: FrozenSet[Node]
    observations: MeasurementVector
    localization: LocalizationResult

    @property
    def uniquely_identified(self) -> bool:
        """True when the localiser returned exactly the injected failure set."""
        return (
            self.localization.unique
            and self.localization.localized_set == self.failure_set
        )


@dataclass(frozen=True)
class CampaignReport:
    """Aggregate over a batch of failure trials of a fixed failure size."""

    failure_size: int
    n_trials: int
    n_unique: int
    mean_ambiguity: float

    @property
    def unique_rate(self) -> float:
        """Fraction of trials where the failure was uniquely localised."""
        return self.n_unique / self.n_trials if self.n_trials else 0.0


class TomographySession:
    """Owns the measurement paths of ``(graph, placement, mechanism)``.

    Parameters mirror :func:`repro.routing.paths.enumerate_paths`; the path
    set is computed eagerly at construction so repeated trials are cheap.

    ``universe`` selects the failure universe the session simulates and
    localises over: ``None``/``"node"`` (the default, bit-identical to the
    historical node sessions), ``"link"``, or a built
    :class:`~repro.failures.FailureUniverse` (the SRLG route).  Failure
    sets, measurement vectors and localisation candidates are then sets of
    that universe's elements.
    """

    def __init__(
        self,
        graph: AnyGraph,
        placement: MonitorPlacement,
        mechanism: RoutingMechanism | str = RoutingMechanism.CSP,
        cutoff: Optional[int] = None,
        max_paths: Optional[int] = None,
        backend: BackendSpec = None,
        compress: Optional[bool] = None,
        pathset: Optional[PathSet] = None,
        universe: Optional["FailureUniverse | str"] = None,
    ) -> None:
        self.graph = graph
        self.placement = placement
        self.mechanism = RoutingMechanism.parse(mechanism)
        if pathset is None:
            kwargs = {}
            if cutoff is not None:
                kwargs["cutoff"] = cutoff
            if max_paths is not None:
                kwargs["max_paths"] = max_paths
            pathset = enumerate_paths(graph, placement, self.mechanism, **kwargs)
        self.pathset: PathSet = pathset
        #: The failure universe of the session (node mode by default).
        self.universe: FailureUniverse = resolve_universe(pathset, universe)
        #: The shared signature engine; every identifiability and measurement
        #: query of the session runs on these packed signatures.
        self.engine: SignatureEngine = self.pathset.engine(
            backend, compress, universe=self.universe
        )
        self._mu_cache: Optional[int] = None

    @classmethod
    def from_scenario(cls, scenario: "Scenario") -> "TomographySession":
        """A session over a :class:`repro.api.scenario.Scenario`'s pipeline.

        Reuses the scenario's already-enumerated path set, its spec-scoped
        engine configuration and its failure universe, so the session shares
        the interned signatures instead of re-enumerating.
        """
        config = scenario.spec.engine
        return cls(
            scenario.graph,
            scenario.placement,
            scenario.mechanism,
            backend=config.backend,
            compress=config.compress,
            pathset=scenario.pathset,
            universe=scenario.universe,
        )

    @property
    def _node_mode(self) -> bool:
        return self.universe.kind == "node"

    # -- identifiability ----------------------------------------------------
    @property
    def mu(self) -> int:
        """Exact maximal identifiability of the session's universe (cached)."""
        if self._mu_cache is None:
            bound = structural_upper_bound(
                self.graph, self.placement, self.mechanism,
                universe=None if self._node_mode else self.universe,
            )
            result = self.engine.identifiability(max_size=bound.combined + 1)
            self._mu_cache = result.value
        return self._mu_cache

    # -- forward model ------------------------------------------------------
    def measure(self, failure_set: Iterable[Node]) -> MeasurementVector:
        """Boolean measurement vector produced by ``failure_set`` (a set of
        this session's universe elements)."""
        if self._node_mode:
            return measurement_vector(self.pathset, failure_set)
        failed = frozenset(failure_set)
        for element in failed:
            self.universe.mask(element)  # membership check with a clear error
        return self.engine.measurement_vector(failed)

    def localize(
        self, observations: Sequence[int], max_failures: int
    ) -> LocalizationResult:
        """Run the localiser on an observation vector."""
        if self._node_mode:
            return localize_failures(self.pathset, observations, max_failures)
        return localize_element_failures(self.universe, observations, max_failures)

    # -- simulation ---------------------------------------------------------
    def sample_failure_set(self, size: int, rng: RngLike = None) -> FrozenSet[Node]:
        """Uniformly random failure set of the given size.

        In node mode, monitors are assumed reliable (Section 2: "monitors by
        default must be reliable"), so failures are drawn from the remaining
        nodes whenever enough of them exist; otherwise from the whole
        universe.  Link and SRLG universes have no monitor elements, so their
        failures are drawn uniformly from all elements.
        """
        if size < 0:
            raise IdentifiabilityError(f"failure size must be >= 0, got {size}")
        generator = resolve_rng(rng)
        if self._node_mode:
            non_monitors = sorted(
                self.pathset.node_universe - self.placement.monitor_nodes, key=repr
            )
            pool = non_monitors if len(non_monitors) >= size else sorted(
                self.pathset.node_universe, key=repr
            )
        else:
            pool = sorted(self.universe.elements, key=repr)
        if size > len(pool):
            raise IdentifiabilityError(
                f"cannot sample {size} failing elements from a pool of {len(pool)}"
            )
        return frozenset(generator.sample(pool, size))

    def run_trial(self, failure_set: Iterable[Node], max_failures: Optional[int] = None) -> TrialOutcome:
        """Inject a failure set, measure, localise."""
        failed = frozenset(failure_set)
        observations = self.measure(failed)
        bound = len(failed) if max_failures is None else max_failures
        localization = self.localize(observations, bound)
        return TrialOutcome(failed, observations, localization)

    def run_campaign(
        self, failure_size: int, n_trials: int, rng: RngLike = None
    ) -> CampaignReport:
        """Aggregate unique-localisation rate over ``n_trials`` random failures.

        When µ ≥ ``failure_size`` the unique rate is guaranteed to be 1.0;
        below µ the rate measures how much practical localisation power the
        topology retains beyond the worst-case guarantee.
        """
        if n_trials < 1:
            raise IdentifiabilityError(f"n_trials must be >= 1, got {n_trials}")
        generator = resolve_rng(rng)
        n_unique = 0
        total_ambiguity = 0
        for _ in range(n_trials):
            failure = self.sample_failure_set(failure_size, generator)
            outcome = self.run_trial(failure)
            if outcome.uniquely_identified:
                n_unique += 1
            total_ambiguity += outcome.localization.ambiguity
        return CampaignReport(
            failure_size=failure_size,
            n_trials=n_trials,
            n_unique=n_unique,
            mean_ambiguity=total_ambiguity / n_trials,
        )

    def describe(self) -> str:
        """One-line summary used by examples."""
        universe = "" if self._node_mode else f", universe={self.universe.kind}"
        return (
            f"TomographySession({self.graph.name or 'graph'}, "
            f"|m|={self.placement.n_inputs}, |M|={self.placement.n_outputs}, "
            f"{self.mechanism.value}, |P|={self.pathset.n_paths}{universe})"
        )
