"""Order embeddings between DAGs (Section 6).

A mapping ``f : V(G) -> V(H)`` between two DAGs (viewed as posets under
reachability) is an *embedding* when it is injective and respects the order in
both directions: ``u ⪯_G v`` iff ``f(u) ⪯_H f(v)``.  The paper additionally
distinguishes

* bijective embeddings (order isomorphisms onto the image of V(H)),
* *distance-increasing* (d.i.) embeddings — ``d_G(x, y) ≤ d_H(f(x), f(y))``,
* *distance-preserving* (d.p.) embeddings — equality of distances,

and proves how µ transfers along each class (Theorems 6.2 and 6.4,
Corollary 6.5).  This module checks these properties and searches for
embeddings between small DAGs by backtracking.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import networkx as nx

from repro._typing import Node
from repro.exceptions import EmbeddingError
from repro.embeddings.poset import distance, leq, reachability_order
from repro.monitors.placement import MonitorPlacement
from repro.topology.base import require_dag


def is_injective(mapping: Mapping[Node, Node]) -> bool:
    """True when ``mapping`` is injective."""
    return len(set(mapping.values())) == len(mapping)


def is_order_embedding(
    source: nx.DiGraph, target: nx.DiGraph, mapping: Mapping[Node, Node]
) -> bool:
    """Check that ``mapping`` embeds the poset of ``source`` into ``target``.

    Requirements: defined on every node of ``source``, injective, images in
    ``target``, and ``u ⪯ v`` iff ``f(u) ⪯ f(v)`` for every ordered node pair.
    """
    require_dag(source)
    require_dag(target)
    if set(mapping) != set(source.nodes):
        return False
    if not is_injective(mapping):
        return False
    if any(image not in target for image in mapping.values()):
        return False
    source_order = reachability_order(source)
    target_order = reachability_order(target)
    for u in source.nodes:
        for v in source.nodes:
            forward = v in source_order[u]
            image_forward = mapping[v] in target_order[mapping[u]]
            if forward != image_forward:
                return False
    return True


def is_distance_increasing(
    source: nx.DiGraph, target: nx.DiGraph, mapping: Mapping[Node, Node]
) -> bool:
    """d.i. embedding check: ``d_G(x, y) ≤ d_H(f(x), f(y))`` for all pairs.

    Pairs at infinite distance in ``source`` impose no constraint (any value
    is ≥ nothing smaller than infinity only when the target is also infinite
    or larger — infinity ≤ infinity holds).
    """
    if not is_order_embedding(source, target, mapping):
        return False
    for x in source.nodes:
        for y in source.nodes:
            if x == y:
                continue
            d_source = distance(source, x, y)
            if d_source == float("inf"):
                continue
            if d_source > distance(target, mapping[x], mapping[y]):
                return False
    return True


def is_distance_preserving(
    source: nx.DiGraph, target: nx.DiGraph, mapping: Mapping[Node, Node]
) -> bool:
    """d.p. embedding check: ``d_G(x, y) = d_H(f(x), f(y))`` for all pairs."""
    if not is_order_embedding(source, target, mapping):
        return False
    for x in source.nodes:
        for y in source.nodes:
            if x == y:
                continue
            if distance(source, x, y) != distance(target, mapping[x], mapping[y]):
                return False
    return True


def find_order_embedding(
    source: nx.DiGraph,
    target: nx.DiGraph,
    bijective: bool = False,
    max_assignments: int = 2_000_000,
) -> Optional[Dict[Node, Node]]:
    """Backtracking search for an order embedding of ``source`` into ``target``.

    Parameters
    ----------
    source, target:
        DAGs; the reachability posets are what gets embedded.
    bijective:
        Require ``|V(source)| = |V(target)|`` and an onto mapping (an order
        isomorphism), as in the second part of Section 6.
    max_assignments:
        Safety valve on the number of partial assignments explored.

    Returns the mapping, or ``None`` when no embedding exists.
    """
    require_dag(source)
    require_dag(target)
    if bijective and source.number_of_nodes() != target.number_of_nodes():
        return None
    if source.number_of_nodes() > target.number_of_nodes():
        return None

    source_order = reachability_order(source)
    target_order = reachability_order(target)
    source_nodes = sorted(source.nodes, key=lambda n: (-len(source_order[n]), repr(n)))
    target_nodes = sorted(target.nodes, key=repr)

    assignment: Dict[Node, Node] = {}
    used: set = set()
    budget = [max_assignments]

    def consistent(node: Node, image: Node) -> bool:
        for other, other_image in assignment.items():
            forward = other in source_order[node]
            backward = node in source_order[other]
            image_forward = other_image in target_order[image]
            image_backward = image in target_order[other_image]
            if forward != image_forward or backward != image_backward:
                return False
        return True

    def backtrack(index: int) -> bool:
        if budget[0] <= 0:
            raise EmbeddingError(
                "embedding search exceeded its assignment budget; the graphs "
                "are too large for the exact backtracking search"
            )
        if index == len(source_nodes):
            return True
        node = source_nodes[index]
        for image in target_nodes:
            if image in used:
                continue
            budget[0] -= 1
            if consistent(node, image):
                assignment[node] = image
                used.add(image)
                if backtrack(index + 1):
                    return True
                del assignment[node]
                used.remove(image)
        return False

    if backtrack(0):
        return dict(assignment)
    return None


def is_embeddable(source: nx.DiGraph, target: nx.DiGraph, bijective: bool = False) -> bool:
    """``G ↪ H``: does an order embedding exist?"""
    return find_order_embedding(source, target, bijective=bijective) is not None


def induced_placement(
    placement: MonitorPlacement, mapping: Mapping[Node, Node]
) -> MonitorPlacement:
    """``χ_f = (f ∘ χ_i, f ∘ χ_o)``: the placement induced on the target graph.

    Section 6 transfers a monitor placement along an embedding this way before
    comparing µ(G|χ) with µ(H|χ_f).
    """
    missing = [
        node for node in placement.monitor_nodes if node not in mapping
    ]
    if missing:
        raise EmbeddingError(
            f"the embedding is not defined on monitor nodes {missing!r}"
        )
    return MonitorPlacement(
        frozenset(mapping[node] for node in placement.inputs),
        frozenset(mapping[node] for node in placement.outputs),
    )


def identity_embedding(graph: nx.DiGraph) -> Dict[Node, Node]:
    """The identity mapping, an order embedding of ``G*`` into ``G`` and of
    ``G`` into ``G^k`` (used by Lemma 6.6 and Corollary 6.8)."""
    return {node: node for node in graph.nodes}


def image_subgraph(target: nx.DiGraph, mapping: Mapping[Node, Node]) -> nx.DiGraph:
    """The subgraph of ``target`` induced by the image of an embedding."""
    return target.subgraph(set(mapping.values())).copy()
