"""Shared type aliases used across the :mod:`repro` package.

The library follows the paper's conventions:

* a *node* is any hashable object — grid nodes are ``tuple[int, ...]``
  coordinates, tree and zoo-network nodes are strings or integers;
* a *path* is an ordered tuple of nodes (the paper identifies a path in a DAG
  with its node sequence, Section 2);
* a *node set* (a candidate failure set) is a ``frozenset`` of nodes.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Sequence, Tuple, Union

import networkx as nx

#: A node of a topology.  Grid nodes are coordinate tuples, other topologies
#: use strings or ints.  Anything hashable is accepted.
Node = Hashable

#: A measurement path, represented by its ordered node sequence.
Path = Tuple[Node, ...]

#: A set of candidate failure nodes.
NodeSet = frozenset

#: Either flavour of networkx graph accepted by most of the library.
AnyGraph = Union[nx.Graph, nx.DiGraph]

#: Convenience alias for things accepted where a collection of nodes is needed.
Nodes = Iterable[Node]

#: A mapping used as an embedding ``f : V(G) -> V(H)``.
NodeMapping = Mapping[Node, Node]

#: A sequence of measurement outcomes, one Boolean per path (1 = failure seen).
MeasurementVector = Tuple[int, ...]

#: A sequence of paths.
PathSequence = Sequence[Path]
