"""Section 7.1.1 cost-benefit trade-offs — κ(G, T) and β(t) sweeps.

The benchmark runs Agrid on EuNetworks, evaluates the static trade-off over a
range of horizons and link costs, and the dynamic per-step benefit, asserting
the qualitative claims: κ grows with the horizon length (the installation cost
amortises) and the intervention becomes worthwhile once the horizon is long
enough.
"""

from __future__ import annotations

from conftest import run_once

from repro.agrid.algorithm import agrid
from repro.agrid.tradeoffs import (
    dynamic_benefit_series,
    identifiability_scaled_test_cost,
    static_tradeoff,
    uniform_edge_cost,
)
from repro.core.identifiability import mu
from repro.topology.zoo import eunetworks


def _run_tradeoff_sweep() -> dict:
    graph = eunetworks()
    boost = agrid(graph, 3, rng=2018)
    mu_before = mu(graph, boost.placement_original)
    mu_after = mu(boost.boosted, boost.placement_boosted)

    kappas = {}
    for horizon in (4, 26, 52, 104, 520):
        tradeoff = static_tradeoff(
            added_edges=boost.added_edges,
            times=range(horizon),
            baseline_test_cost=identifiability_scaled_test_cost(100.0, mu_before),
            boosted_test_cost=identifiability_scaled_test_cost(100.0, mu_after),
            edge_cost=uniform_edge_cost(250.0),
        )
        kappas[horizon] = tradeoff.kappa

    benefits = dynamic_benefit_series(
        edge_batches=[boost.added_edges] * 5,
        benefits=[100.0 * (mu_after - mu_before)] * 5,
        edge_cost=uniform_edge_cost(10.0),
    )
    return {
        "mu_before": mu_before,
        "mu_after": mu_after,
        "kappa_by_horizon": kappas,
        "dynamic_benefits": list(benefits),
        "n_added_edges": boost.n_added_edges,
    }


def test_tradeoffs(benchmark):
    results = run_once(benchmark, _run_tradeoff_sweep)

    assert results["mu_after"] > results["mu_before"]
    kappas = results["kappa_by_horizon"]
    horizons = sorted(kappas)
    # kappa is non-decreasing in the horizon: installation cost amortises.
    assert all(kappas[a] <= kappas[b] for a, b in zip(horizons, horizons[1:]))
    # A long enough horizon makes the intervention worthwhile.
    assert kappas[520] > 1.0

    benchmark.extra_info["experiment"] = "Section 7.1.1 cost-benefit trade-offs"
    benchmark.extra_info["measured"] = {
        "kappa_by_horizon": {str(k): round(v, 3) for k, v in kappas.items()},
        "mu_before": results["mu_before"],
        "mu_after": results["mu_after"],
    }
