"""Tomography-as-a-service: the long-lived scenario server.

This subsystem turns the one-shot analyses of the paper into a service: an
asyncio HTTP layer (:mod:`repro.service.app`, installed as the
``repro-serve`` console script) accepts :class:`~repro.api.spec.ScenarioSpec`
payloads, memoises compiled scenarios by spec fingerprint
(:mod:`repro.service.cache`), runs analyses on a bounded worker pool with
per-request budgets and 429 backpressure (:mod:`repro.service.executor`),
and streams churn replays over chunked responses.  The replay harness
(:mod:`repro.service.loadgen`) fires a spec corpus at a running server and
reports sustained scenarios/sec plus the measured cache hit rate.

Everything here is stdlib-only (``asyncio`` + hand-rolled HTTP/1.1 framing)
— no new runtime dependencies.
"""

from repro.service.cache import ScenarioCache, ScenarioCacheStats, spec_fingerprint
from repro.service.executor import AnalysisExecutor, ServiceOverloadedError

__all__ = [
    "AnalysisExecutor",
    "ScenarioCache",
    "ScenarioCacheStats",
    "ServiceOverloadedError",
    "spec_fingerprint",
]
