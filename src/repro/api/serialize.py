"""JSON plumbing shared by the declarative API and the experiment runner.

Two directions live here:

* :func:`to_jsonable` — lossy, one-way conversion of arbitrary result objects
  (dataclasses, enums, sets, tuple-keyed dicts) into JSON-serialisable data.
  This is what the runner's ``--format json`` and every
  :meth:`~repro.api.results.AnalysisReport.to_dict` emit.
* :func:`encode_node` / :func:`decode_node` — the *lossless* node-label codec
  used by literal graph/placement specs.  JSON has no tuple type, so tuple
  node labels (the hypergrid coordinates) are encoded as lists and decoded
  back to tuples; strings, ints, floats and bools pass through unchanged.
  Lists are unambiguous here because a list is not hashable and therefore can
  never itself be a networkx node label.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any


def to_jsonable(obj: Any) -> Any:
    """Recursively convert a result object into JSON-serialisable data.

    Dataclasses become dicts of their public fields, enums their values,
    non-string dict keys are joined/stringified (``(50, 5)`` -> ``"50,5"``),
    sets are emitted in sorted (by ``repr``) order so output is
    deterministic, and anything else unrecognised falls back to ``str``.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            field.name: to_jsonable(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
            if not field.name.startswith("_")
        }
    if isinstance(obj, enum.Enum):
        return obj.value
    if isinstance(obj, dict):
        return {json_key(key): to_jsonable(value) for key, value in obj.items()}
    if isinstance(obj, (set, frozenset)):
        return [to_jsonable(value) for value in sorted(obj, key=repr)]
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(value) for value in obj]
    if obj is None or isinstance(obj, (str, int, float, bool)):
        return obj
    return str(obj)


def json_key(key: Any) -> str:
    """Stringify a dict key the way the runner's JSON documents always have."""
    if isinstance(key, str):
        return key
    if isinstance(key, tuple):
        return ",".join(str(part) for part in key)
    return str(key)


def encode_node(node: Any) -> Any:
    """Encode one node label into its JSON form (tuples become lists)."""
    if isinstance(node, tuple):
        return [encode_node(part) for part in node]
    return node


def decode_node(payload: Any) -> Any:
    """Invert :func:`encode_node` (lists become tuples)."""
    if isinstance(payload, list):
        return tuple(decode_node(part) for part in payload)
    return payload


def json_normalize(value: Any) -> Any:
    """Canonicalise spec parameters into their JSON-stable form.

    Specs must compare equal across a ``to_json``/``from_json`` round trip, so
    parameters are normalised *at construction time* to exactly what JSON will
    hand back: tuples/sets become lists, dict keys become strings, scalars
    pass through.  Builders that need tuple node labels decode them with
    :func:`decode_node` when the scenario is materialised.
    """
    if isinstance(value, dict):
        return {str(key): json_normalize(val) for key, val in value.items()}
    if isinstance(value, (set, frozenset)):
        return [json_normalize(val) for val in sorted(value, key=repr)]
    if isinstance(value, (list, tuple)):
        return [json_normalize(val) for val in value]
    if isinstance(value, enum.Enum):
        return value.value
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise TypeError(f"value {value!r} is not JSON-normalisable")
