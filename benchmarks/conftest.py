"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's evaluation artifacts (a table,
a theorem's tight value, or an ablation) and asserts the *shape* claims the
paper makes about it — who wins, by roughly what factor — while
pytest-benchmark records the runtime.  Results that belong in EXPERIMENTS.md
are attached to ``benchmark.extra_info`` so a ``--benchmark-json`` run carries
the measured values alongside the timings.

Trial counts are reduced relative to the paper where the paper-sized run would
take minutes (the drivers accept the full counts; see each module docstring).
"""

from __future__ import annotations

import pytest

#: Master seed used by every benchmark for reproducibility.
BENCH_SEED = 2018


@pytest.fixture(scope="session")
def bench_seed() -> int:
    return BENCH_SEED


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing.

    The experiment drivers are deterministic for a fixed seed, so repeating
    them only burns wall-clock time; one round with one iteration is enough
    for a stable, meaningful measurement of the end-to-end experiment cost.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
