"""Command-line entry point: re-run the paper's experimental section.

Installed as the ``repro-experiments`` console script.  Examples::

    repro-experiments --tables real               # Tables 3-5
    repro-experiments --tables random             # Tables 6-7 (reduced batches)
    repro-experiments --tables truncated          # Tables 8-10
    repro-experiments --tables monitors           # Tables 11-13
    repro-experiments --tables all --seed 7       # everything, custom seed
    repro-experiments --tables random --jobs 4    # fan trials out over 4 workers
    repro-experiments --tables random --trials 10 --format json --output out.json

The default ``--format text`` prints one paper-style table per experiment,
suitable for pasting into EXPERIMENTS.md; ``--format json`` emits one
machine-readable document carrying both the rendered text and the structured
result data of every section.  ``--jobs N`` parallelises the Monte-Carlo
batches over N worker processes (0 = all cores) with bit-identical output to
a serial run of the same seed.
"""

from __future__ import annotations

import argparse
import dataclasses
import enum
import json
import sys
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.engine import (
    backend_policy,
    cache_stats,
    clear_pathset_cache,
    compression_policy,
)
from repro.experiments import (
    ablation,
    random_graphs,
    random_monitors,
    real_networks,
    truncated,
)
from repro.topology import zoo


@dataclass(frozen=True)
class Section:
    """One printable/serialisable experiment artifact (one table)."""

    group: str
    title: str
    body: str
    data: Any

    def render(self) -> str:
        return f"== {self.title} ==\n{self.body}"


def to_jsonable(obj: Any) -> Any:
    """Recursively convert a result object into JSON-serialisable data.

    Dataclasses become dicts of their public fields, enums their values,
    non-string dict keys are joined/stringified (``(50, 5)`` -> ``"50,5"``),
    and anything else unrecognised falls back to ``str``.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            field.name: to_jsonable(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
            if not field.name.startswith("_")
        }
    if isinstance(obj, enum.Enum):
        return obj.value
    if isinstance(obj, dict):
        return {_json_key(key): to_jsonable(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [to_jsonable(value) for value in obj]
    if obj is None or isinstance(obj, (str, int, float, bool)):
        return obj
    return str(obj)


def _json_key(key: Any) -> str:
    if isinstance(key, str):
        return key
    if isinstance(key, tuple):
        return ",".join(str(part) for part in key)
    return str(key)


#: Mapping of CLI group name -> callable(seed, jobs, trials) -> sections.
_GROUPS: Dict[str, Callable[[int, int, Optional[int]], List[Section]]] = {}


def _register(name: str):
    def decorator(func: Callable[[int, int, Optional[int]], List[Section]]):
        _GROUPS[name] = func
        return func

    return decorator


@_register("real")
def _run_real(seed: int, jobs: int, trials: Optional[int]) -> List[Section]:
    # Tables 3-5 are single deterministic measurements per network — there is
    # no trial batch to fan out, so ``jobs``/``trials`` are ignored here.
    sections = []
    for table_name, result in real_networks.run_all_real_networks(rng=seed).items():
        label = real_networks.REAL_NETWORK_TABLES[table_name]
        sections.append(
            Section(group="real", title=label, body=result.render(),
                    data=to_jsonable(result))
        )
    return sections


@_register("random")
def _run_random(seed: int, jobs: int, trials: Optional[int]) -> List[Section]:
    batch_sizes = (trials,) if trials else (50, 100)
    sections = []
    for title, run_table in (("Table 6", random_graphs.run_table6),
                             ("Table 7", random_graphs.run_table7)):
        table = run_table(batch_sizes=batch_sizes, rng=seed, jobs=jobs)
        sections.append(
            Section(group="random", title=title, body=table.render(),
                    data=to_jsonable(table))
        )
    return sections


@_register("truncated")
def _run_truncated(seed: int, jobs: int, trials: Optional[int]) -> List[Section]:
    n_samples = trials if trials else truncated.PAPER_N_SAMPLES
    sections = []
    results = truncated.run_all_truncated(n_samples=n_samples, rng=seed, jobs=jobs)
    for name, result in results.items():
        label = truncated.TRUNCATED_TABLES[name]
        sections.append(
            Section(group="truncated", title=label, body=result.render(),
                    data=to_jsonable(result))
        )
    return sections


@_register("monitors")
def _run_monitors(seed: int, jobs: int, trials: Optional[int]) -> List[Section]:
    n_placements = trials if trials else random_monitors.PAPER_N_PLACEMENTS
    sections = []
    results = random_monitors.run_all_random_monitors(
        n_placements=n_placements, rng=seed, jobs=jobs
    )
    for name, result in results.items():
        label = random_monitors.RANDOM_MONITOR_TABLES[name]
        sections.append(
            Section(group="monitors", title=label, body=result.render(),
                    data=to_jsonable(result))
        )
    return sections


@_register("ablation")
def _run_ablation(seed: int, jobs: int, trials: Optional[int]) -> List[Section]:
    graph = zoo.eunetworks()
    n_runs = trials if trials else 5
    placement = ablation.placement_ablation(graph, n_runs=n_runs, rng=seed, jobs=jobs)
    selector = ablation.selector_ablation(graph, n_runs=n_runs, rng=seed, jobs=jobs)
    return [
        Section(
            group="ablation",
            title="Ablation: monitor placement heuristic",
            body=placement.render("Ablation: monitor placement heuristic"),
            data=to_jsonable(placement),
        ),
        Section(
            group="ablation",
            title="Ablation: Agrid edge-selection rule",
            body=selector.render("Ablation: Agrid edge-selection rule"),
            data=to_jsonable(selector),
        ),
    ]


def available_groups() -> Iterable[str]:
    """The experiment groups the CLI can run."""
    return sorted(_GROUPS) + ["all"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Re-run the experimental section of the Boolean network "
        "tomography identifiability paper (Tables 3-13 plus ablations).",
    )
    parser.add_argument(
        "--tables",
        default="all",
        choices=list(available_groups()),
        help="which experiment group to run (default: all)",
    )
    parser.add_argument(
        "--seed", type=int, default=2018, help="master random seed (default: 2018)"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the Monte-Carlo batches "
        "(default: 1 = serial; 0 = all cores); output is bit-identical "
        "to a serial run of the same seed",
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=None,
        metavar="N",
        help="override the per-cell trial/sample/placement/run count with a "
        "reduced batch (smoke tests, CI); default: the paper-scaled counts",
    )
    parser.add_argument(
        "--format",
        default="text",
        choices=["text", "json"],
        help="output format: paper-style text tables or one JSON document "
        "(default: text)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="write the rendered output to FILE instead of stdout",
    )
    parser.add_argument(
        "--backend",
        default=None,
        choices=["auto", "python", "numpy"],
        help="signature-engine backend policy for every µ computation, "
        "propagated to pool workers and restored after the run "
        "(default: the engine's current policy)",
    )
    parser.add_argument(
        "--no-compress",
        action="store_true",
        help="disable signature-universe compression (duplicate path columns "
        "are collapsed by default; every reported value is identical either "
        "way, only the µ-computation speed changes)",
    )
    parser.add_argument(
        "--cache-stats",
        action="store_true",
        help="print the pathset-cache hit/miss counters (worker deltas "
        "merged in) to stderr after the run",
    )
    return parser


def run(
    group: str,
    seed: int,
    jobs: int = 1,
    trials: Optional[int] = None,
) -> List[Section]:
    """Run one group (or 'all') and return the result sections.

    The pathset cache is cleared once per invocation — groups inside an
    ``'all'`` run deliberately share entries — so every invocation is
    reproducible and its reported statistics describe this run only.
    """
    if trials is not None and trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    clear_pathset_cache()
    if group == "all":
        sections: List[Section] = []
        for name in sorted(_GROUPS):
            sections.extend(_GROUPS[name](seed, jobs, trials))
        return sections
    return _GROUPS[group](seed, jobs, trials)


def render_text(sections: Iterable[Section]) -> str:
    """The classic plain-text rendering: one table per section."""
    return "\n\n".join(section.render() for section in sections) + "\n"


def render_json(
    sections: Iterable[Section], seed: int, jobs: int = 1
) -> str:
    """One JSON document carrying every section's text and structured data."""
    document = {
        "seed": seed,
        "jobs": jobs,
        "sections": [
            {
                "group": section.group,
                "title": section.title,
                "text": section.body,
                "data": section.data,
            }
            for section in sections
        ],
    }
    return json.dumps(document, indent=2, sort_keys=False) + "\n"


def main(argv: List[str] | None = None) -> int:
    """Console-script entry point.

    The ``--backend`` and ``--no-compress`` selections are scoped to this
    call (and propagated into any pool workers), so invoking ``main`` as a
    library function never leaks an engine-policy change into the host
    process.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    with backend_policy(args.backend), compression_policy(
        False if args.no_compress else None
    ):
        sections = run(args.tables, args.seed, jobs=args.jobs, trials=args.trials)
        if args.format == "json":
            payload = render_json(sections, args.seed, args.jobs)
        else:
            payload = render_text(sections)
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(payload)
        else:
            sys.stdout.write(payload)
        if args.cache_stats:
            print(cache_stats(), file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
