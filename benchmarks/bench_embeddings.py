"""Section 6 — identifiability through embeddings and order dimension.

Covers Theorem 6.2 (routing-consistent source), Theorem 6.4 / Corollary 6.5
(distance-increasing / preserving embeddings), Theorem 6.7 (µ ≥ dim for
transitively closed DAGs) and Corollary 6.8 (transitive closure never hurts),
all evaluated exactly on small DAG instances.
"""

from __future__ import annotations

import networkx as nx
from conftest import run_once

from repro.core.identifiability import mu
from repro.embeddings.dimension import order_dimension
from repro.embeddings.embedding import find_order_embedding, identity_embedding
from repro.embeddings.poset import transitive_closure
from repro.embeddings.theorems import compare_under_embedding, theorem_6_7_report
from repro.monitors.grid_placement import chi_g
from repro.monitors.placement import MonitorPlacement
from repro.monitors.tree_placement import chi_t
from repro.topology.grids import directed_grid, directed_hypergrid
from repro.topology.trees import complete_kary_tree


def _run_embedding_suite() -> dict:
    results = {}

    # Theorem 6.4 / Corollary 6.5: diamond -> H_3 (distance increasing).
    diamond = nx.DiGraph([("s", "a"), ("s", "b"), ("a", "t"), ("b", "t")])
    grid = directed_hypergrid(3, 2)
    mapping = find_order_embedding(diamond, grid)
    placement = MonitorPlacement.of(inputs={"s"}, outputs={"t"})
    comparison = compare_under_embedding(diamond, grid, mapping, placement)
    results["thm_6_4_holds"] = comparison.theorem_6_4_holds
    results["cor_6_5_holds"] = comparison.corollary_6_5_holds

    # Theorem 6.2: a routing-consistent tree embedded (identity) into its
    # transitive closure.
    tree = complete_kary_tree(depth=2, arity=2)
    closure = transitive_closure(tree)
    tree_comparison = compare_under_embedding(
        tree, closure, identity_embedding(tree), chi_t(tree)
    )
    results["thm_6_2_applicable"] = tree_comparison.routing_consistent_source
    results["thm_6_2_holds"] = tree_comparison.theorem_6_2_holds

    # Theorem 6.7 and Corollary 6.8 on the closure of the directed grid H_3.
    h3 = directed_grid(3)
    h3_closure = transitive_closure(h3)
    report = theorem_6_7_report(h3_closure, chi_g(h3))
    results["thm_6_7_mu"] = report.mu_value
    results["thm_6_7_dim"] = report.dimension
    results["thm_6_7_holds"] = report.holds
    results["cor_6_8_holds"] = report.mu_value >= mu(h3, chi_g(h3))

    # Order dimension of reference posets.
    results["dim_diamond"] = order_dimension(diamond)
    results["dim_grid_closure"] = order_dimension(h3_closure)
    return results


def test_embeddings_and_dimension(benchmark):
    results = run_once(benchmark, _run_embedding_suite)

    assert results["thm_6_4_holds"]
    assert results["cor_6_5_holds"]
    assert results["thm_6_2_applicable"] and results["thm_6_2_holds"]
    assert results["thm_6_7_holds"] and results["thm_6_7_mu"] >= results["thm_6_7_dim"]
    assert results["cor_6_8_holds"]
    assert results["dim_diamond"] == 2
    assert results["dim_grid_closure"] == 2

    benchmark.extra_info["experiment"] = "Section 6 (embeddings, dimension)"
    benchmark.extra_info["measured"] = results
