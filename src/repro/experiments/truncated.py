"""Tables 8-10: truncated maximal identifiability µ_λ (Section 8.0.3).

Computing exact µ for many Agrid samples is expensive, so the paper compares
``µ_λ(G)`` with ``µ_λ(G^A)`` where the truncation level λ is the average
degree of the graph being measured.  For a fixed network G the experiment
draws 30 independent G^A samples (Agrid is randomised) and reports, for each
possible value of µ_λ, the percentage of samples attaining it — one row for
the (deterministic) G and one for the G^A distribution, as in Tables 8, 9
and 10.  Only the ``d = log N`` case is reported, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import networkx as nx

from repro.api.spec import (
    EngineConfig,
    FailureModel,
    PlacementSpec,
    RoutingSpec,
    ScenarioSpec,
    TopologySpec,
)
from repro.core.truncated import default_truncation_level
from repro.exceptions import ExperimentError
from repro.experiments.common import coerce_universe_spec, measure_network, resolve_dimension
from repro.experiments.parallel import TrialSpec, run_trials
from repro.routing.mechanisms import RoutingMechanism
from repro.topology import zoo
from repro.utils.seeds import RngLike, spawn_rng, spawn_seed
from repro.utils.tables import format_percentage, format_table

#: The networks of Tables 8, 9 and 10 in paper order.
TRUNCATED_TABLES: Dict[str, str] = {
    "claranet": "Table 8",
    "gridnetwork": "Table 9",
    "eunetwork_small": "Table 10",
}

#: Number of independent G^A samples, as in the paper.
PAPER_N_SAMPLES = 30


@dataclass(frozen=True)
class TruncatedDistribution:
    """Distribution of µ_λ values over Agrid samples (or the single G value)."""

    truncation: int
    counts: Dict[int, int]

    @property
    def n_samples(self) -> int:
        return sum(self.counts.values())

    def fraction(self, value: int) -> float:
        if self.n_samples == 0:
            return 0.0
        return self.counts.get(value, 0) / self.n_samples

    def support(self) -> Tuple[int, ...]:
        return tuple(sorted(self.counts))

    @property
    def mean(self) -> float:
        if self.n_samples == 0:
            return 0.0
        return sum(value * count for value, count in self.counts.items()) / self.n_samples


@dataclass(frozen=True)
class TruncatedResult:
    """One full Table 8/9/10 for one network."""

    network: str
    n_nodes: int
    dimension: int
    original: TruncatedDistribution
    boosted: TruncatedDistribution

    def render(self) -> str:
        values = sorted(set(self.original.support()) | set(self.boosted.support()) | {0, 1, 2})
        headers = ["graph \\ mu_lambda"] + [str(v) for v in values]
        rows = [
            [f"[{self.original.truncation}]G"]
            + [format_percentage(self.original.fraction(v)) for v in values],
            [f"[{self.boosted.truncation}]G^A"]
            + [format_percentage(self.boosted.fraction(v)) for v in values],
        ]
        title = f"{self.network} (|V| = {self.n_nodes}, d = {self.dimension})"
        return format_table(headers, rows, title=title)

    @property
    def boosted_dominates(self) -> bool:
        """The qualitative claim of Tables 8-10: the G^A distribution puts all
        of its mass at values at least as large as the best value G attains."""
        return self.boosted.mean >= self.original.mean


def truncated_trial(spec: ScenarioSpec) -> Tuple[int, int]:
    """One Table-8/9/10 sample: draw G^A, return (µ_λ(G^A), λ).

    The whole sample is one pickled, self-contained
    :class:`~repro.api.spec.ScenarioSpec`: an ``agrid``-boosted literal
    topology (the boost consumes the spec's seeded stream, exactly as the
    old hand-rolled trial did), MDMP placement, mechanism and engine config.
    Materialised through the :class:`~repro.api.scenario.Scenario` facade, so
    the Agrid samples can be fanned out over a process pool by
    :mod:`repro.experiments.parallel` with no process-global state.
    """
    scenario = spec.build()
    truncation = default_truncation_level(scenario.graph)
    return scenario.truncated(truncation).value, truncation


def run_truncated_experiment(
    graph: nx.Graph,
    n_samples: int = PAPER_N_SAMPLES,
    rng: RngLike = 2018,
    mechanism: RoutingMechanism | str = RoutingMechanism.CSP,
    dimension: Optional[int] = None,
    jobs: int = 1,
    universe: str = "node",
) -> TruncatedResult:
    """Run the µ_λ comparison on one network (``jobs`` workers).

    ``universe`` selects the failure universe of every µ_λ (``"node"`` — the
    bit-identical default — or ``"link"``); it travels inside each sample's
    pickled spec and the facade's ``truncated`` analysis honours it."""
    if n_samples < 1:
        raise ExperimentError(f"n_samples must be >= 1, got {n_samples}")
    mechanism = RoutingMechanism.parse(mechanism)
    d = dimension if dimension is not None else resolve_dimension("log", graph)

    engine = EngineConfig.from_policy()
    routing = RoutingSpec(mechanism=mechanism.value)
    failures = FailureModel(universe=coerce_universe_spec(universe))
    base_topology = TopologySpec.from_graph(graph)
    placement = PlacementSpec("mdmp", {"d": d})

    # The truncation level is the average degree of the graph being measured.
    # The seed slot the pre-spec code spent on the base graph's (deterministic)
    # MDMP placement is still consumed, so seed streams line up exactly.
    original_truncation = default_truncation_level(graph)
    original_measure = measure_network(
        graph,
        ScenarioSpec(
            topology=base_topology, placement=placement, seed=spawn_seed(rng, 0)
        ).build().placement,
        mechanism,
        truncation=original_truncation,
        engine=engine,
        universe=universe,
    )
    original = TruncatedDistribution(
        truncation=original_truncation, counts={original_measure.mu: 1}
    )

    specs = [
        TrialSpec(
            truncated_trial,
            (
                ScenarioSpec(
                    topology=TopologySpec(
                        "agrid", {"base": base_topology.to_dict(), "dimension": d}
                    ),
                    placement=placement,
                    routing=routing,
                    failures=failures,
                    engine=engine,
                    seed=spawn_seed(rng, sample + 1),
                    label=f"truncated {graph.name or 'G'} sample={sample}",
                ),
            ),
            label=f"truncated {graph.name or 'G'} sample={sample}",
        )
        for sample in range(n_samples)
    ]
    boosted_counts: Dict[int, int] = {}
    boosted_truncation = original_truncation
    for mu, truncation in run_trials(specs, jobs=jobs):
        boosted_truncation = truncation
        boosted_counts[mu] = boosted_counts.get(mu, 0) + 1
    boosted = TruncatedDistribution(truncation=boosted_truncation, counts=boosted_counts)
    return TruncatedResult(
        network=graph.name or "G",
        n_nodes=graph.number_of_nodes(),
        dimension=d,
        original=original,
        boosted=boosted,
    )


def run_table8(
    n_samples: int = PAPER_N_SAMPLES, rng: RngLike = 2018, jobs: int = 1,
    universe: str = "node",
) -> TruncatedResult:
    """Table 8: Claranet."""
    return run_truncated_experiment(
        zoo.claranet(), n_samples, rng, jobs=jobs, universe=universe
    )


def run_table9(
    n_samples: int = PAPER_N_SAMPLES, rng: RngLike = 2018, jobs: int = 1,
    universe: str = "node",
) -> TruncatedResult:
    """Table 9: GridNetwork (|V| = 7)."""
    return run_truncated_experiment(
        zoo.gridnetwork(), n_samples, rng, jobs=jobs, universe=universe
    )


def run_table10(
    n_samples: int = PAPER_N_SAMPLES, rng: RngLike = 2018, jobs: int = 1,
    universe: str = "node",
) -> TruncatedResult:
    """Table 10: the 7-node EuNetwork."""
    return run_truncated_experiment(
        zoo.eunetwork_small(), n_samples, rng, jobs=jobs, universe=universe
    )


def run_all_truncated(
    n_samples: int = PAPER_N_SAMPLES, rng: RngLike = 2018, jobs: int = 1,
    universe: str = "node",
) -> Dict[str, TruncatedResult]:
    """Run Tables 8-10 and return results keyed by network name."""
    return {
        name: run_truncated_experiment(
            zoo.load(name), n_samples, spawn_rng(rng, i), jobs=jobs,
            universe=universe,
        )
        for i, name in enumerate(TRUNCATED_TABLES)
    }
