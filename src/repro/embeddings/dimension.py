"""Order dimension of DAGs (Dushnik–Miller) and hypergrid embeddings.

The *dimension* of a DAG ``G`` is the smallest ``d`` such that ``G`` embeds
into the d-dimensional hypergrid ``H_{n,d}`` — equivalently, the smallest
number of linear extensions of its reachability poset whose intersection is
the poset (a *realizer*).  Dushnik and Miller proved ``dim(H_{n,d}) = d`` for
``n > 1``.  Theorem 6.7 lower-bounds µ of transitively closed DAGs by their
dimension, which is why the library needs an exact (small-scale) dimension
computation.

Exact algorithm
---------------

Dimension ≤ d iff the ordered incomparable pairs of the poset can be coloured
with d colours such that, for each colour class ``S``, the relation
``P ∪ {(v, u) : (u, v) ∈ S}`` is acyclic — then each colour class yields one
linear extension reversing exactly those pairs, and the d extensions form a
realizer.  We search for such a colouring by backtracking with incremental
acyclicity checks.  Computing poset dimension is NP-hard for d ≥ 3, so the
search is guarded by an explicit work budget and intended for the small DAGs
the paper's experiments use.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro._typing import Node
from repro.exceptions import EmbeddingError
from repro.embeddings.poset import (
    incomparable_pairs,
    linear_extension,
    reachability_order,
)
from repro.topology.base import require_dag
from repro.topology.grids import grid_parameters

#: Default cap on the backtracking work for the exact dimension search.
DEFAULT_WORK_BUDGET = 200_000


def is_chain(graph: nx.DiGraph) -> bool:
    """True when the reachability poset is a total order (dimension 1)."""
    require_dag(graph)
    return len(incomparable_pairs(graph)) == 0


def realizer(
    graph: nx.DiGraph, max_dim: int = 4, work_budget: int = DEFAULT_WORK_BUDGET
) -> Tuple[Tuple[Node, ...], ...]:
    """A minimum realizer of the reachability poset of ``graph``.

    Returns a tuple of linear extensions whose intersection is the poset; its
    length is the order dimension.  Raises :class:`EmbeddingError` when the
    dimension exceeds ``max_dim`` or the search budget is exhausted.
    """
    require_dag(graph)
    if graph.number_of_nodes() == 0:
        raise EmbeddingError("dimension of the empty poset is undefined")
    critical = list(incomparable_pairs(graph))
    if not critical:
        return (linear_extension(graph),)

    for d in range(2, max_dim + 1):
        colouring = _search_colouring(graph, critical, d, work_budget)
        if colouring is not None:
            extensions = []
            for colour in range(d):
                reversed_pairs = [
                    pair for pair, c in zip(critical, colouring) if c == colour
                ]
                extensions.append(linear_extension(graph, reversed_pairs))
            return tuple(extensions)
    raise EmbeddingError(
        f"order dimension exceeds max_dim={max_dim} (or the search budget was "
        "exhausted); increase max_dim/work_budget"
    )


def order_dimension(
    graph: nx.DiGraph, max_dim: int = 4, work_budget: int = DEFAULT_WORK_BUDGET
) -> int:
    """``dim(G)``: the Dushnik–Miller order dimension of the DAG's poset."""
    return len(realizer(graph, max_dim=max_dim, work_budget=work_budget))


def _search_colouring(
    graph: nx.DiGraph,
    critical: Sequence[Tuple[Node, Node]],
    n_colours: int,
    work_budget: int,
) -> Optional[List[int]]:
    """Backtracking search for an acyclic colouring of the critical pairs."""
    base_edges = list(graph.edges)
    # One constraint graph per colour, extended as pairs get assigned.
    colour_graphs = [nx.DiGraph(base_edges) for _ in range(n_colours)]
    for colour_graph in colour_graphs:
        colour_graph.add_nodes_from(graph.nodes)
    assignment: List[int] = [-1] * len(critical)
    budget = [work_budget]

    # Order pairs to fail fast: pairs whose reversal conflicts with many others
    # first (heuristic: by repr for determinism, length is small anyway).
    order = sorted(range(len(critical)), key=lambda i: repr(critical[i]))

    def feasible(colour_graph: nx.DiGraph, pair: Tuple[Node, Node]) -> bool:
        u, v = pair
        # Adding edge (v, u) creates a cycle iff u already reaches v.
        return not nx.has_path(colour_graph, u, v)

    def backtrack(position: int) -> bool:
        if budget[0] <= 0:
            raise EmbeddingError(
                "dimension search exceeded its work budget; the poset is too "
                "large for the exact computation"
            )
        if position == len(order):
            return True
        index = order[position]
        pair = critical[index]
        u, v = pair
        for colour in range(n_colours):
            budget[0] -= 1
            colour_graph = colour_graphs[colour]
            if not feasible(colour_graph, pair):
                continue
            colour_graph.add_edge(v, u)
            assignment[index] = colour
            if backtrack(position + 1):
                return True
            assignment[index] = -1
            colour_graph.remove_edge(v, u)
        return False

    try:
        if backtrack(0):
            return list(assignment)
    finally:
        pass
    return None


def hypergrid_coordinates(
    graph: nx.DiGraph, max_dim: int = 4, work_budget: int = DEFAULT_WORK_BUDGET
) -> Dict[Node, Tuple[int, ...]]:
    """Coordinates witnessing ``G ↪ H_{n,dim(G)}`` with ``n = |V(G)|``.

    Each node is mapped to the vector of its (1-based) positions in the
    realizer's linear extensions; componentwise order then coincides with the
    reachability order, so the mapping is an order embedding into the directed
    hypergrid of support ``|V|`` and dimension ``dim(G)``.
    """
    extensions = realizer(graph, max_dim=max_dim, work_budget=work_budget)
    positions = [
        {node: index + 1 for index, node in enumerate(extension)}
        for extension in extensions
    ]
    return {
        node: tuple(position[node] for position in positions) for node in graph.nodes
    }


def hypergrid_dimension(grid: nx.DiGraph | nx.Graph) -> int:
    """Dimension of a hypergrid built by :mod:`repro.topology.grids`.

    Dushnik–Miller: ``dim(H_{n,d}) = d`` for every ``n > 1`` — returned in
    O(1) from the grid metadata rather than recomputed.
    """
    _, d = grid_parameters(grid)
    return d


def dimension_lower_bound(graph: nx.DiGraph) -> int:
    """Cheap lower bound on the order dimension: 1 for chains, else 2.

    (The standard-example lower bounds would require identifying ``S_n``
    suborders; for the small DAGs handled here the exact search is cheap
    enough that a sophisticated bound is unnecessary.)
    """
    require_dag(graph)
    return 1 if is_chain(graph) else 2


def verify_realizer(graph: nx.DiGraph, extensions: Sequence[Sequence[Node]]) -> bool:
    """Check that ``extensions`` is a realizer of ``graph``'s poset.

    Every extension must be a linear extension (respect the order) and the
    intersection of the extensions must equal the reachability order.
    """
    require_dag(graph)
    order = reachability_order(graph)
    nodes = list(graph.nodes)
    position_maps = []
    for extension in extensions:
        if set(extension) != set(nodes) or len(extension) != len(nodes):
            return False
        positions = {node: index for index, node in enumerate(extension)}
        position_maps.append(positions)
        for u in nodes:
            for v in order[u]:
                if u != v and positions[u] > positions[v]:
                    return False
    for u in nodes:
        for v in nodes:
            if u == v:
                continue
            in_all = all(positions[u] < positions[v] for positions in position_maps)
            in_poset = v in order[u]
            if in_all != in_poset:
                return False
    return True
