"""Separation utilities (Sections 2.0.1 and 2.0.2).

Upper bounds on µ are proved by exhibiting two node sets with identical path
sets; lower bounds by exhibiting, for every pair of small node sets, a path
touching exactly one of them.  This module provides both directions as
reusable primitives:

* :func:`separating_path` — a measurement path witnessing ``P(U) △ P(W) ≠ ∅``;
* :func:`verify_k_identifiability_by_separation` — a brute-force double check
  of k-identifiability that runs the *definition* (all pairs, separation
  witness for each) rather than the signature algorithm.  Tests use it as an
  independent oracle for the fast implementation.
* :func:`path_through_avoiding` — a graph-level search for a measurement path
  through a prescribed node avoiding a forbidden set.  This mirrors the
  constructive Lemmas 4.4/4.5 (and Claim 5.5 for the undirected grid) that the
  paper uses to build separating paths explicitly.
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, Iterable, Optional, Tuple

import networkx as nx

from repro._typing import AnyGraph, Node, Path
from repro.core.identifiability import UniverseLike, resolve_universe
from repro.exceptions import IdentifiabilityError
from repro.monitors.placement import MonitorPlacement
from repro.resilience.budget import Budget
from repro.routing.paths import PathSet


def separating_path(
    pathset: PathSet, first: Iterable[Node], second: Iterable[Node]
) -> Optional[Path]:
    """A measurement path touching exactly one of ``first`` / ``second``.

    Returns ``None`` when the two sets are inseparable (``P(U) = P(W)``).
    """
    witnesses = pathset.separating_paths(first, second)
    return witnesses[0] if witnesses else None


def verify_k_identifiability_by_separation(
    pathset: PathSet,
    k: int,
    nodes: Optional[Iterable[Node]] = None,
    universe: UniverseLike = None,
) -> Tuple[bool, Optional[Tuple[FrozenSet[Node], FrozenSet[Node]]]]:
    """Check Definition 2.1 literally: every pair of distinct sets of size ≤ k
    must admit a separating path.

    Returns ``(True, None)`` when k-identifiability holds, otherwise
    ``(False, (U, W))`` with an inseparable witness pair.  Exponential in k —
    intended for tests and small graphs, not for production computation (use
    :func:`repro.core.identifiability.is_k_identifiable`).  With a
    ``universe`` the definition is checked over that universe's elements and
    masks — the naive oracle the engine-parity tests run for the link and
    SRLG variants.
    """
    if k < 0:
        raise IdentifiabilityError(f"k must be >= 0, got {k}")
    resolved = resolve_universe(pathset, universe)
    elements = (
        tuple(sorted(set(nodes), key=repr)) if nodes is not None else resolved.elements
    )
    subsets = [
        frozenset(combo)
        for size in range(0, k + 1)
        for combo in itertools.combinations(elements, size)
    ]
    for i, first in enumerate(subsets):
        for second in subsets[i + 1 :]:
            if first == second:
                continue
            if not resolved.separates(first, second):
                return False, (first, second)
    return True, None


def path_through_avoiding(
    graph: AnyGraph,
    placement: MonitorPlacement,
    through: Node,
    avoid: Iterable[Node] = (),
    cutoff: Optional[int] = None,
) -> Optional[Path]:
    """Find a simple input→output path through ``through`` avoiding ``avoid``.

    This is the constructive primitive behind the paper's lower-bound proofs
    (Lemmas 4.4/4.5, Claim 4.6, Claim 5.5): to separate U from W one exhibits a
    measurement path crossing a node of U while dodging every node of W.

    The search works on the subgraph with the ``avoid`` nodes removed: it
    tries every (input, output) monitor pair and looks for a simple path via
    ``through`` composed of a prefix (input → through) and a suffix
    (through → output) that share no node besides ``through``.  Returns the
    first such path found, or ``None``.
    """
    forbidden = frozenset(avoid)
    if through in forbidden:
        raise IdentifiabilityError("the 'through' node cannot also be avoided")
    if through not in graph:
        raise IdentifiabilityError(f"{through!r} is not a node of the graph")
    placement.validate(graph)

    allowed_nodes = [n for n in graph.nodes if n not in forbidden]
    reduced = graph.subgraph(allowed_nodes)
    if through not in reduced:
        return None

    inputs = sorted((n for n in placement.inputs if n in reduced), key=repr)
    outputs = sorted((n for n in placement.outputs if n in reduced), key=repr)
    for source in inputs:
        prefixes = _simple_paths_or_single(reduced, source, through, cutoff)
        for prefix in prefixes:
            prefix_interior = set(prefix) - {through}
            # The suffix must not reuse prefix nodes (other than ``through``)
            # to keep the overall path simple.
            suffix_graph = reduced.subgraph(
                [n for n in reduced.nodes if n not in prefix_interior]
            )
            for target in outputs:
                if target == source and len(prefix) == 1:
                    continue
                if target in prefix_interior:
                    continue
                if target not in suffix_graph:
                    continue
                suffixes = _simple_paths_or_single(suffix_graph, through, target, cutoff)
                for suffix in suffixes:
                    full = tuple(prefix) + tuple(suffix[1:])
                    if len(full) >= 2 and len(set(full)) == len(full):
                        return full
    return None


def _simple_paths_or_single(
    graph: AnyGraph, source: Node, target: Node, cutoff: Optional[int]
) -> Iterable[Tuple[Node, ...]]:
    """All simple paths source→target; a single-node path when they coincide."""
    if source == target:
        return [(source,)]
    if source not in graph or target not in graph:
        return []
    return (tuple(p) for p in nx.all_simple_paths(graph, source, target, cutoff=cutoff))


def inseparable_pairs_of_size(
    pathset: PathSet,
    size: int,
    compress: Optional[bool] = None,
    universe: UniverseLike = None,
    search_jobs: Optional[int] = None,
    budget: Optional["Budget"] = None,
    kernel: Optional[str] = None,
    block_size: Optional[int] = None,
) -> Tuple[Tuple[FrozenSet[Node], FrozenSet[Node]], ...]:
    """All unordered pairs of distinct element sets of exactly ``size``
    elements with identical path sets.  Exponential; meant for diagnostics on
    small graphs.

    Delegates the signature grouping to the engine, which computes each
    subset's signature incrementally instead of re-deriving ``P(U)`` per
    subset.  ``universe`` selects the failure universe (nodes by default).
    An expired ``budget`` raises
    :class:`~repro.exceptions.BudgetExceededError` (no partial census).
    """
    return pathset.engine(compress=compress, universe=universe).inseparable_pairs(
        size, search_jobs=search_jobs, budget=budget, kernel=kernel,
        block_size=block_size,
    )
