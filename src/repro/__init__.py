"""repro — Boolean network tomography: maximal identifiability of failure nodes.

A complete, laptop-scale reproduction of

    Galesi & Ranjbar, "Tight bounds for maximal identifiability of failure
    nodes in Boolean network tomography", ICDCS 2018 (arXiv:1712.09856).

The package provides:

* **Topologies** (:mod:`repro.topology`) — directed/undirected d-dimensional
  hypergrids, trees, lines, Erdős–Rényi graphs and the small "zoo" networks of
  the experimental section.
* **Monitor placements** (:mod:`repro.monitors`) — the χ_g and χ_t placements,
  the MDMP heuristic and random placements.
* **Routing** (:mod:`repro.routing`) — CAP / CAP⁻ / CSP measurement-path
  enumeration.
* **Signature engine** (:mod:`repro.engine`) — the shared substrate for all
  identifiability queries: interned path-mask signatures, equivalence-class
  collapsing, incremental subset search with dominance pruning, python/numpy
  backends and the keyed pathset cache.
* **Identifiability core** (:mod:`repro.core`) — exact maximal identifiability
  µ, truncated µ_α, local identifiability, structural upper bounds and
  separation primitives (thin clients of the engine).
* **Failure universes** (:mod:`repro.failures`) — element-generic failure
  models: the same µ machinery over node failures (the paper's measure), link
  failures, or shared-risk link groups (SRLGs).
* **Boolean tomography** (:mod:`repro.tomography`) — the measurement system of
  Equation (1), failure simulation and localisation, over any failure
  universe.
* **Embeddings** (:mod:`repro.embeddings`) — order embeddings, distance
  increasing/preserving embeddings, order dimension and the Section-6 theorems
  as executable checks.
* **Agrid** (:mod:`repro.agrid`) — the edge-addition heuristic, the Section-7
  network-design recipe and cost-benefit trade-off models.
* **Experiments** (:mod:`repro.experiments`) — drivers regenerating Tables
  3-13 and the ablations.

* **Declarative API** (:mod:`repro.api`) — the stable, spec-driven surface:
  :class:`ScenarioSpec` (JSON-round-trippable scenario descriptions),
  :class:`Scenario` (the facade over graph → paths → engine → analyses) and
  the extensible builder registries (:data:`repro.registries`).

Quickstart
----------

>>> import repro
>>> spec = repro.ScenarioSpec(
...     topology=repro.TopologySpec("claranet"),        # zoo topology
...     placement=repro.PlacementSpec("mdmp", {"d": 4}),  # MDMP monitors
... )                                                   # CSP routing (default)
>>> repro.Scenario(spec).mu().value                     # exact µ(G|χ)
1

The free functions of the seed releases (``mu(graph, placement)`` and
friends) remain available as thin deprecated shims over the facade.
"""

from repro.__about__ import __version__
from repro.agrid import agrid, design_network
from repro.analysis import verify
from repro.api import registries
from repro.api.scenario import Scenario
from repro.api.spec import (
    AnalysisSpec,
    DeltaSpec,
    EngineConfig,
    FailureModel,
    PlacementSpec,
    RoutingSpec,
    ScenarioSpec,
    TopologySpec,
    UniverseSpec,
)
from repro.failures import FailureUniverse
from repro.engine import (
    SignatureEngine,
    available_backends,
    cached_enumerate_paths,
    select_backend,
)
from repro.core import (
    is_k_identifiable,
    maximal_identifiability,
    mu,
    mu_detailed,
    mu_truncated,
    structural_upper_bound,
)
from repro.monitors import (
    MonitorPlacement,
    chi_corners,
    chi_g,
    chi_t,
    mdmp_placement,
    random_placement,
)
from repro.exceptions import BudgetExceededError
from repro.resilience import Budget, ChaosConfig, CheckpointJournal, TrialFailure
from repro.routing import PathSet, RoutingMechanism, enumerate_paths
from repro.tomography import TomographySession, localize_failures, measurement_vector
from repro.topology import (
    claranet,
    directed_grid,
    directed_hypergrid,
    erdos_renyi_connected,
    undirected_grid,
    undirected_hypergrid,
)

__all__ = [
    "__version__",
    # declarative scenario API (the stable surface)
    "Scenario",
    "ScenarioSpec",
    "TopologySpec",
    "PlacementSpec",
    "RoutingSpec",
    "FailureModel",
    "UniverseSpec",
    "DeltaSpec",
    "FailureUniverse",
    "AnalysisSpec",
    "EngineConfig",
    "registries",
    # core measure
    "mu",
    "mu_detailed",
    "mu_truncated",
    "maximal_identifiability",
    "is_k_identifiable",
    "structural_upper_bound",
    "verify",
    # signature engine
    "SignatureEngine",
    "select_backend",
    "available_backends",
    "cached_enumerate_paths",
    # routing
    "PathSet",
    "RoutingMechanism",
    "enumerate_paths",
    # monitors
    "MonitorPlacement",
    "chi_corners",
    "chi_g",
    "chi_t",
    "mdmp_placement",
    "random_placement",
    # topologies
    "claranet",
    "directed_grid",
    "directed_hypergrid",
    "undirected_grid",
    "undirected_hypergrid",
    "erdos_renyi_connected",
    # tomography
    "TomographySession",
    "localize_failures",
    "measurement_vector",
    # resilience
    "Budget",
    "BudgetExceededError",
    "ChaosConfig",
    "CheckpointJournal",
    "TrialFailure",
    # applications
    "agrid",
    "design_network",
]
