"""Bound verification: measure µ exactly and check it against every applicable
theoretical statement.

This is the glue used by the benchmark harness: for a (graph, placement,
mechanism) triple it produces a :class:`VerificationReport` with the computed
µ, the structural upper bounds of Section 3, the topology-specific prediction
(when one applies) and pass/fail flags for each.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro._typing import AnyGraph
from repro.analysis.theory import Prediction, predict
from repro.core.bounds import BoundReport, structural_upper_bound
from repro.core.identifiability import IdentifiabilityResult
from repro.monitors.placement import MonitorPlacement
from repro.routing.mechanisms import RoutingMechanism


@dataclass(frozen=True)
class VerificationReport:
    """Exact µ next to every applicable bound / prediction."""

    mu_value: int
    n_paths: int
    bounds: BoundReport
    prediction: Optional[Prediction]
    mechanism: RoutingMechanism
    search_exhausted: bool

    @property
    def respects_upper_bounds(self) -> bool:
        """µ never exceeds the Section 3 combined structural upper bound."""
        return self.mu_value <= self.bounds.combined

    @property
    def matches_prediction(self) -> bool:
        """µ falls in the predicted range (vacuously true with no prediction)."""
        if self.prediction is None:
            return True
        return self.prediction.contains(self.mu_value)

    @property
    def all_checks_pass(self) -> bool:
        return self.respects_upper_bounds and self.matches_prediction

    def summary(self) -> str:
        """One-line summary for logs and benchmark output."""
        predicted = (
            f"{self.prediction.lower}..{self.prediction.upper} ({self.prediction.theorem})"
            if self.prediction
            else "n/a"
        )
        return (
            f"mu={self.mu_value} |P|={self.n_paths} bound<={self.bounds.combined} "
            f"predicted={predicted} "
            f"[{'OK' if self.all_checks_pass else 'MISMATCH'}]"
        )


def verify(
    graph: AnyGraph,
    placement: MonitorPlacement,
    mechanism: RoutingMechanism | str = RoutingMechanism.CSP,
    max_size: Optional[int] = None,
) -> VerificationReport:
    """Compute µ exactly and check it against bounds and predictions.

    Runs on the :class:`repro.api.scenario.Scenario` facade (with a
    policy-capturing engine config), so it computes exactly what the legacy
    graph-level wrappers did.
    """
    from repro.api.scenario import Scenario
    from repro.api.spec import EngineConfig

    mechanism = RoutingMechanism.parse(mechanism)
    scenario = Scenario.from_components(
        graph, placement, mechanism, engine=EngineConfig.from_policy(cache=False)
    )
    result: IdentifiabilityResult = scenario.identifiability(max_size=max_size)
    bounds = structural_upper_bound(graph, placement, mechanism)
    prediction = predict(graph, placement)
    return VerificationReport(
        mu_value=result.value,
        n_paths=scenario.pathset.n_paths,
        bounds=bounds,
        prediction=prediction,
        mechanism=mechanism,
        search_exhausted=result.exhausted_search,
    )
