"""The signature engine: the single substrate for identifiability queries.

Every quantity the paper computes — µ, µ_α, local identifiability,
separability tables, Boolean measurement vectors — reduces to questions about
*signatures*: ``P(U)``, the set of measurement paths touched by a set of
failure elements.  :class:`SignatureEngine` interns the per-element
signatures once (packed by a :mod:`~repro.engine.backends` backend),
collapses elements into signature equivalence classes, and answers all
downstream queries without ever going back to the raw paths.

The engine is **element-generic**: a row can be a node's ``P(v)``, a link's
traversal mask, or a shared-risk link group's union mask — the signature
algebra (unions, equalities, inclusions over GF(2) incidence vectors) never
inspects what a row represents.  Which rows exist is decided by the
:class:`~repro.failures.FailureUniverse` the engine is built over (node mode
being the historical default); the ``nodes`` naming below is kept for
backward compatibility and reads as "elements" in non-node universes.

By default the engine first compresses the signature universe — duplicate
path columns (paths with identical touch-sets) are collapsed and all-zero
columns dropped, see :mod:`repro.engine.compress` — so every union, equality
and subset test below runs over the distinct-column width rather than
``|P|``.  Results are bit-identical to the raw universe; outputs phrased in
path indices (the measurement vector) are expanded back before they leave
the engine.

The exact µ search
------------------

The naive reference implementation sweeps ``itertools.combinations`` and
recomputes ``P(U)`` from scratch for every subset.  The engine keeps the same
enumeration *order* (sizes increasing, lexicographic within a size) — so the
computed µ, the ``searched_up_to`` bookkeeping and the exhaustion semantics
are identical — but obtains each subset's signature differently:

1. **Equivalence-class fast path.**  One O(|V|) pass compares the interned
   per-node signature keys.  An uncovered node (empty signature) is
   confusable with ∅ and two nodes in the same class are confusable with each
   other, so any non-singleton class certifies µ = 0 immediately.  Past this
   point every class is a singleton, i.e. the class universe *is* the node
   universe, and the subset search runs over provably distinct signatures.
2. **Incremental DFS.**  Subsets of each size are enumerated by a DFS that
   carries the union of the chosen prefix, so extending a subset by one node
   costs one backend union instead of ``|U|`` dict lookups and ORs.
3. **Subset-dominance pruning.**  When the last node ``u`` of a candidate
   ``U`` satisfies ``P(u) ⊆ P(U∖{u})``, then ``P(U) = P(U∖{u})`` and the
   collision is certified immediately — no hashing, no partner lookup.
   (Dominance can only fire on the final extension: an earlier firing would
   exhibit a collision between two smaller subsets, which the completed
   smaller sizes have already excluded.)
4. **Signature table.**  Remaining candidates are checked against a
   ``key -> subset`` table spanning all sizes searched so far, exactly like
   the reference implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro._typing import Node
from repro.engine.backends import (
    BackendSpec,
    SignatureBackend,
    resolve_backend,
)
from repro.engine.compress import (
    CompressionPlan,
    compress_universe,
    compression_enabled,
)
from repro.exceptions import IdentifiabilityError


@dataclass(frozen=True)
class ConfusablePair:
    """A witness that identifiability fails at level ``max(|U|, |W|)``.

    ``U`` and ``W`` are distinct node sets with identical path sets
    (``P(U) = P(W)``); no measurement can tell the corresponding failure sets
    apart.
    """

    first: FrozenSet[Node]
    second: FrozenSet[Node]

    @property
    def level(self) -> int:
        """The identifiability level this pair falsifies."""
        return max(len(self.first), len(self.second))

    def __iter__(self) -> Iterator[FrozenSet[Node]]:
        return iter((self.first, self.second))


@dataclass(frozen=True)
class IdentifiabilityResult:
    """Outcome of a maximal-identifiability computation.

    Attributes
    ----------
    value:
        The computed µ.  When ``exhausted_search`` is False this is exact;
        otherwise it is a certified lower bound (identifiability holds at this
        level but the search stopped before finding a failure).
    witness:
        The confusable pair proving ``µ < value + 1``, when one was found.
    searched_up_to:
        The largest subset size whose subsets were fully enumerated.
    exhausted_search:
        True when the search hit its size cap without finding a collision.
    """

    value: int
    witness: Optional[ConfusablePair]
    searched_up_to: int
    exhausted_search: bool

    def __int__(self) -> int:
        return self.value


class SignatureEngine:
    """Interned, class-collapsed signature store over a fixed path universe.

    Parameters
    ----------
    nodes:
        The node universe, in canonical order (the enumeration order of every
        subset search).
    node_masks:
        ``node -> P(v)`` as Python big-int bitmasks (the routing layer builds
        these once per :class:`~repro.routing.paths.PathSet`).
    n_paths:
        ``|P|``, the width of the *original* signature universe.  Reported
        unchanged even under compression — only the internal column width
        shrinks.
    backend:
        ``None`` (global policy), a backend name, or a
        :class:`~repro.engine.backends.SignatureBackend` instance.
    compress:
        Collapse duplicate path columns into a compressed universe (see
        :mod:`repro.engine.compress` for the soundness argument).  ``None``
        (the default) follows the global policy of
        :func:`~repro.engine.compress.select_compression`, which is on.
        Every result — µ, witnesses, ``searched_up_to``, separability
        tables, measurement vectors — is bit-identical either way; only the
        per-union cost changes.
    """

    def __init__(
        self,
        nodes: Sequence[Node],
        node_masks: Mapping[Node, int],
        n_paths: int,
        backend: BackendSpec = None,
        compress: Optional[bool] = None,
    ) -> None:
        self.nodes: Tuple[Node, ...] = tuple(nodes)
        self.n_paths = n_paths
        if compress is None:
            compress = compression_enabled()
        plan: Optional[CompressionPlan] = None
        if compress:
            plan, compressed_masks = compress_universe(
                self.nodes, node_masks, n_paths
            )
            if plan.is_identity:
                plan = None  # nothing merged or dropped: skip the indirection
            else:
                node_masks = compressed_masks
        self.compression = plan
        width = plan.n_compressed if plan is not None else n_paths
        self.backend: SignatureBackend = resolve_backend(backend, width)
        pack = self.backend.pack
        self._signatures = {node: pack(node_masks[node]) for node in self.nodes}
        key = self.backend.key
        self._keys = {
            node: key(signature) for node, signature in self._signatures.items()
        }

    @property
    def n_columns(self) -> int:
        """The internal signature width (``n_paths`` unless compressed)."""
        if self.compression is not None:
            return self.compression.n_compressed
        return self.n_paths

    @property
    def elements(self) -> Tuple[Node, ...]:
        """The failure elements this engine's rows belong to.

        An alias of :attr:`nodes` — the engine is element-generic, and
        ``nodes`` keeps its historical name for the default node universe.
        """
        return self.nodes

    @classmethod
    def from_pathset(
        cls, pathset, backend: BackendSpec = None, compress: Optional[bool] = None
    ) -> "SignatureEngine":
        """Build an engine over a :class:`~repro.routing.paths.PathSet`'s
        node universe.

        Prefer :meth:`PathSet.engine() <repro.routing.paths.PathSet.engine>`,
        which memoises the engine per (universe, backend, compression).
        """
        masks = {node: pathset.paths_through(node) for node in pathset.nodes}
        return cls(pathset.nodes, masks, pathset.n_paths, backend, compress)

    @classmethod
    def from_universe(
        cls, universe, backend: BackendSpec = None, compress: Optional[bool] = None
    ) -> "SignatureEngine":
        """Build an engine over a :class:`~repro.failures.FailureUniverse`.

        Prefer :meth:`PathSet.engine(universe=...)
        <repro.routing.paths.PathSet.engine>`, which memoises per universe
        fingerprint.
        """
        return cls(
            universe.elements, universe.masks, universe.n_paths, backend, compress
        )

    # -- signature accessors -------------------------------------------------
    def signature(self, node: Node):
        """The packed signature of ``P(v)``.

        Packed signatures (and the keys derived from them) live in the
        engine's internal column space — the compressed universe when
        ``self.compression`` is set.  They are opaque: compare them via
        :meth:`signature_key`, and use ``self.compression.expand_mask`` /
        ``expand_indices`` to translate back to original path indices.
        """
        try:
            return self._signatures[node]
        except KeyError as exc:
            raise IdentifiabilityError(
                f"{node!r} is not in the engine's element universe"
            ) from exc

    def signature_key(self, node: Node):
        """The hashable key of ``P(v)`` (equal keys iff equal path sets)."""
        try:
            return self._keys[node]
        except KeyError as exc:
            raise IdentifiabilityError(
                f"{node!r} is not in the engine's element universe"
            ) from exc

    def union_signature(self, nodes: Iterable[Node]):
        """The packed signature of ``P(U) = ∪_{u in U} P(u)``."""
        backend = self.backend
        signature = backend.empty()
        for node in nodes:
            signature = backend.union(signature, self.signature(node))
        return signature

    def union_key(self, nodes: Iterable[Node]):
        """The hashable key of ``P(U)``."""
        return self.backend.key(self.union_signature(nodes))

    def measurement_vector(self, failed: Iterable[Node]) -> Tuple[int, ...]:
        """The Boolean measurement of Equation (1): bit ``i`` is 1 iff path
        ``i`` crosses a node of ``failed``.

        Always reported over the **original** path indices: under
        compression the compressed indicator is mapped back through
        :meth:`CompressionPlan.expand_indicator
        <repro.engine.compress.CompressionPlan.expand_indicator>`.
        """
        signature = self.union_signature(failed)
        if self.compression is not None:
            return self.compression.expand_indicator(self.backend.bits(signature))
        return self.backend.indicator_vector(signature)

    # -- equivalence classes -------------------------------------------------
    def equivalence_classes(
        self, nodes: Optional[Iterable[Node]] = None
    ) -> Tuple[Tuple[Node, ...], ...]:
        """Partition of the universe into signature equivalence classes.

        Nodes in the same class have identical ``P(v)`` and are therefore
        pairwise confusable.  Classes are ordered by first appearance in the
        canonical node order; members keep that order too.
        """
        grouped: Dict[object, List[Node]] = {}
        for node in self._resolve_universe(nodes):
            grouped.setdefault(self._keys[node], []).append(node)
        return tuple(tuple(members) for members in grouped.values())

    def confusable_singletons(
        self, nodes: Optional[Iterable[Node]] = None
    ) -> Optional[ConfusablePair]:
        """The O(|V|) µ = 0 certificate, if one exists.

        Scans the universe once in canonical order: the first node whose
        signature is empty (confusable with ∅) or equal to an earlier node's
        signature yields the witness; ``None`` means all singleton signatures
        are distinct and non-empty, i.e. µ ≥ 1.
        """
        return self._confusable_singletons(self._resolve_universe(nodes))

    def _confusable_singletons(
        self, universe: Tuple[Node, ...]
    ) -> Optional[ConfusablePair]:
        backend = self.backend
        empty_key = backend.key(backend.empty())
        seen: Dict[object, Node] = {}
        for node in universe:
            key = self._keys[node]
            if key == empty_key:
                return ConfusablePair(frozenset(), frozenset({node}))
            if key in seen:
                return ConfusablePair(frozenset({seen[key]}), frozenset({node}))
            seen[key] = node
        return None

    # -- subset enumeration --------------------------------------------------
    def iter_subset_signatures(
        self, sizes: Iterable[int], nodes: Optional[Iterable[Node]] = None
    ) -> Iterator[Tuple[Tuple[Node, ...], object]]:
        """Yield ``(subset, signature_key)`` for every subset of each size.

        Subsets of one size are produced in lexicographic (canonical node
        order) order — the same order as ``itertools.combinations`` — but the
        signature of each subset is built incrementally from its prefix, so
        the amortised cost per subset is a single backend union.
        """
        universe = self._resolve_universe(nodes)
        signatures = [self._signatures[node] for node in universe]
        backend = self.backend
        union, key = backend.union, backend.key
        n = len(universe)
        for size in sizes:
            if size < 0:
                raise IdentifiabilityError(f"subset size must be >= 0, got {size}")
            if size == 0:
                yield (), key(backend.empty())
                continue
            if size > n:
                continue
            indices = list(range(size))
            # prefix[d] is the union of the signatures at indices[:d].
            prefix = [backend.empty()] * (size + 1)
            for depth in range(size):
                prefix[depth + 1] = union(prefix[depth], signatures[indices[depth]])
            while True:
                yield tuple(universe[i] for i in indices), key(prefix[size])
                # Advance to the next combination, recomputing only the
                # prefix unions right of the bumped position.
                position = size - 1
                while position >= 0 and indices[position] == position + n - size:
                    position -= 1
                if position < 0:
                    break
                indices[position] += 1
                for depth in range(position + 1, size):
                    indices[depth] = indices[depth - 1] + 1
                for depth in range(position, size):
                    prefix[depth + 1] = union(prefix[depth], signatures[indices[depth]])

    # -- the exact µ search --------------------------------------------------
    def identifiability(
        self,
        max_size: Optional[int] = None,
        nodes: Optional[Iterable[Node]] = None,
    ) -> IdentifiabilityResult:
        """Exact maximal identifiability of the (possibly restricted) universe.

        Semantics match the naive reference sweep exactly: the first subset
        size ``s`` at which two subsets of size ≤ s share a signature gives
        ``µ = s − 1``; searching up to the cap without a collision gives the
        exhausted result.  See the module docstring for the fast paths.
        """
        universe = self._resolve_universe(nodes)
        if not universe:
            raise IdentifiabilityError("the element universe is empty")
        n = len(universe)
        cap = n if max_size is None else max(0, min(max_size, n))
        if cap == 0:
            return IdentifiabilityResult(
                value=0, witness=None, searched_up_to=0, exhausted_search=True
            )

        # Size-0/size-1 fast path over the equivalence classes.
        witness = self._confusable_singletons(universe)
        if witness is not None:
            return IdentifiabilityResult(
                value=0, witness=witness, searched_up_to=1, exhausted_search=False
            )
        if cap == 1:
            return IdentifiabilityResult(
                value=1, witness=None, searched_up_to=1, exhausted_search=True
            )

        backend = self.backend
        union, key, is_subset = backend.union, backend.key, backend.is_subset
        signatures = [self._signatures[node] for node in universe]
        # Signature table over all subsets enumerated so far.  The singleton
        # pass found no collision, so seeding sizes 0 and 1 cannot collide.
        seen: Dict[object, Tuple[Node, ...]] = {key(backend.empty()): ()}
        for index, node in enumerate(universe):
            seen[key(signatures[index])] = (node,)

        for size in range(2, cap + 1):
            indices = list(range(size))
            prefix = [backend.empty()] * size
            for depth in range(size - 1):
                prefix[depth + 1] = union(prefix[depth], signatures[indices[depth]])
            while True:
                last = indices[size - 1]
                rest = prefix[size - 1]
                last_signature = signatures[last]
                if is_subset(last_signature, rest):
                    # Dominance: P(last) ⊆ P(U∖{last}), so U collides with
                    # U∖{last} — certified without touching the table.
                    smaller = frozenset(universe[i] for i in indices[:-1])
                    return IdentifiabilityResult(
                        value=size - 1,
                        witness=ConfusablePair(
                            smaller, smaller | {universe[last]}
                        ),
                        searched_up_to=size,
                        exhausted_search=False,
                    )
                signature_key = key(union(rest, last_signature))
                partner = seen.get(signature_key)
                if partner is not None:
                    subset = tuple(universe[i] for i in indices)
                    return IdentifiabilityResult(
                        value=size - 1,
                        witness=ConfusablePair(frozenset(partner), frozenset(subset)),
                        searched_up_to=size,
                        exhausted_search=False,
                    )
                seen[signature_key] = tuple(universe[i] for i in indices)
                position = size - 1
                while position >= 0 and indices[position] == position + n - size:
                    position -= 1
                if position < 0:
                    break
                indices[position] += 1
                for depth in range(position + 1, size):
                    indices[depth] = indices[depth - 1] + 1
                for depth in range(position, size - 1):
                    prefix[depth + 1] = union(prefix[depth], signatures[indices[depth]])
        return IdentifiabilityResult(
            value=cap, witness=None, searched_up_to=cap, exhausted_search=True
        )

    # -- separation queries --------------------------------------------------
    def separates(self, first: Iterable[Node], second: Iterable[Node]) -> bool:
        """Whether some measurement path touches exactly one of the two sets."""
        return self.union_key(first) != self.union_key(second)

    def separability_matrix(
        self, size: int, nodes: Optional[Iterable[Node]] = None
    ) -> Dict[Tuple[FrozenSet[Node], FrozenSet[Node]], bool]:
        """Pairwise separation table for all subsets of a given size."""
        if size < 1:
            raise IdentifiabilityError(f"size must be >= 1, got {size}")
        entries = [
            (frozenset(subset), signature_key)
            for subset, signature_key in self.iter_subset_signatures([size], nodes)
        ]
        table: Dict[Tuple[FrozenSet[Node], FrozenSet[Node]], bool] = {}
        for i, (first, first_key) in enumerate(entries):
            for second, second_key in entries[i + 1 :]:
                table[(first, second)] = first_key != second_key
        return table

    def inseparable_pairs(
        self, size: int, nodes: Optional[Iterable[Node]] = None
    ) -> Tuple[Tuple[FrozenSet[Node], FrozenSet[Node]], ...]:
        """All unordered pairs of same-size subsets with identical path sets."""
        if size < 1:
            raise IdentifiabilityError(f"size must be >= 1, got {size}")
        groups: Dict[object, List[FrozenSet[Node]]] = {}
        for subset, signature_key in self.iter_subset_signatures([size], nodes):
            groups.setdefault(signature_key, []).append(frozenset(subset))
        pairs: List[Tuple[FrozenSet[Node], FrozenSet[Node]]] = []
        for members in groups.values():
            for i, first in enumerate(members):
                for second in members[i + 1 :]:
                    pairs.append((first, second))
        return tuple(pairs)

    # -- plumbing ------------------------------------------------------------
    def _resolve_universe(
        self, nodes: Optional[Iterable[Node]]
    ) -> Tuple[Node, ...]:
        """Canonicalise a universe restriction (sorted by repr, validated)."""
        if nodes is None:
            return self.nodes
        universe = tuple(sorted(set(nodes), key=repr))
        for node in universe:
            if node not in self._signatures:
                raise IdentifiabilityError(
                    f"{node!r} is not in the engine's element universe"
                )
        return universe

    def describe(self) -> str:
        """One-line summary used by examples and benchmarks."""
        classes = self.equivalence_classes()
        width = (
            f"columns={self.n_columns}" if self.compression is not None else "raw"
        )
        return (
            f"SignatureEngine(|V|={len(self.nodes)}, |P|={self.n_paths}, "
            f"{width}, classes={len(classes)}, backend={self.backend.name})"
        )
