"""repro.failures — element-generic failure universes.

The paper defines maximal identifiability µ over *node* failures, but the
signature algebra the engine runs on — unions, equalities and inclusions of
path-incidence bitmasks over GF(2) — never looks at what a row *is*.  This
package makes that genericity explicit: a :class:`FailureUniverse` is an
ordered set of failure *elements* (nodes, links, or shared-risk link groups),
each mapped to the bitmask of measurement paths that cross it.  Every layer
above routing — the :class:`~repro.engine.signatures.SignatureEngine`, the
identifiability core, the tomography session, the :class:`repro.Scenario`
facade and the experiment drivers — accepts a universe and computes the same
measures over it, with node mode as the bit-identical default.
"""

from repro.failures.universe import (
    UNIVERSE_KINDS,
    FailureUniverse,
    build_universe,
    canonical_link,
    normalize_groups,
)

__all__ = [
    "UNIVERSE_KINDS",
    "FailureUniverse",
    "build_universe",
    "canonical_link",
    "normalize_groups",
]
