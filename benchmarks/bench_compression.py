"""PR 3 perf pipeline: compressed universes + mask-native enumeration.

Two real table cells are computed twice, end to end:

* **raw** — the pre-PR pipeline, reproduced verbatim: ``networkx``'s
  ``all_simple_paths`` per source with a global tuple dedup set, node masks
  rebuilt afterwards by an O(|P|·|path|) incremental big-int OR re-scan, and
  the signature engine running on the uncompressed ``|P|``-bit universe.
* **optimized** — the shipped pipeline: the native multi-target DFS that
  accumulates the node-incidence lists while it emits paths, plus the engine
  on the duplicate-column-compressed universe.

The cells are Table 3 (Claranet under the log-N Agrid boost: the boosted
graph G^A has a highly duplicate path universe, ~3.3 raw columns per
distinct one) and one Table 6 cell (Erdős–Rényi n = 10, d = sqrt(log n)).
Every reported number — µ, the confusable witness, |P|, the per-trial
improvements — must be bit-identical between the two pipelines, and the
boosted Table 3 cell must come out ≥ 1.5× faster end to end.
"""

from __future__ import annotations

import os
import random
import time
from typing import Dict, List, Tuple

import networkx as nx

from conftest import run_once

from repro.agrid.algorithm import agrid
from repro.core.bounds import structural_upper_bound
from repro.engine.signatures import SignatureEngine
from repro.experiments.common import DIMENSION_RULES
from repro.monitors.heuristics import mdmp_placement
from repro.routing.paths import enumerate_paths
from repro.topology import zoo
from repro.topology.random_graphs import (
    DEFAULT_EDGE_PROBABILITY,
    erdos_renyi_connected,
)
from repro.utils.seeds import spawn_seed

#: Required end-to-end advantage on the compressible Table 3 boosted cell.
#: Local margin is ~2.5x; noisy shared CI runners can set BENCH_MIN_SPEEDUP
#: (e.g. to 1.0) to keep the threshold advisory there while the bit-identity
#: assertions stay hard everywhere.
MIN_SPEEDUP = float(os.environ.get("BENCH_MIN_SPEEDUP", "1.5"))


def _raw_pipeline(graph, placement) -> Dict[str, object]:
    """The pre-PR CSP cell computation, kept verbatim as the raw baseline."""
    node_universe = tuple(sorted(graph.nodes, key=repr))
    paths: List[Tuple] = []
    seen: set = set()
    for source in sorted(placement.inputs, key=repr):
        targets = {t for t in placement.outputs if t != source}
        if not targets:
            continue
        for path in nx.all_simple_paths(graph, source, targets):
            tupled = tuple(path)
            if tupled not in seen:
                seen.add(tupled)
                paths.append(tupled)
    masks = {node: 0 for node in node_universe}
    for index, path in enumerate(paths):  # the old post-hoc mask re-scan
        bit = 1 << index
        for node in set(path):
            masks[node] |= bit
    engine = SignatureEngine(
        node_universe, masks, len(paths), backend=None, compress=False
    )
    cap = structural_upper_bound(graph, placement).combined + 1
    result = engine.identifiability(max_size=cap)
    return {
        "mu": result.value,
        "witness": result.witness,
        "n_paths": len(paths),
        "n_columns": engine.n_columns,
    }


def _optimized_pipeline(graph, placement) -> Dict[str, object]:
    """The shipped pipeline: native DFS enumeration + compressed engine."""
    pathset = enumerate_paths(graph, placement)
    engine = pathset.engine(compress=True)
    cap = structural_upper_bound(graph, placement).combined + 1
    result = engine.identifiability(max_size=cap)
    return {
        "mu": result.value,
        "witness": result.witness,
        "n_paths": pathset.n_paths,
        "n_columns": engine.n_columns,
    }


def _assert_identical_cell(raw: Dict[str, object], fast: Dict[str, object]) -> None:
    assert fast["mu"] == raw["mu"], (raw, fast)
    assert fast["n_paths"] == raw["n_paths"], (raw, fast)
    raw_witness, fast_witness = raw["witness"], fast["witness"]
    if raw_witness is None:
        assert fast_witness is None
    else:
        assert fast_witness is not None
        assert fast_witness.first == raw_witness.first
        assert fast_witness.second == raw_witness.second


def _table3_suite(seed: int) -> Dict[str, Dict[str, object]]:
    """Both columns of the Table 3 log-N row, raw and optimized."""
    graph = zoo.load("claranet")
    boost = agrid(graph, 3, rng=seed)
    cells = {
        "original": (graph, boost.placement_original),
        "boosted": (boost.boosted, boost.placement_boosted),
    }
    measured: Dict[str, Dict[str, object]] = {}
    for label, (cell_graph, placement) in cells.items():
        start = time.perf_counter()
        raw = _raw_pipeline(cell_graph, placement)
        raw_seconds = time.perf_counter() - start
        start = time.perf_counter()
        fast = _optimized_pipeline(cell_graph, placement)
        fast_seconds = time.perf_counter() - start
        _assert_identical_cell(raw, fast)
        measured[label] = {
            "mu": raw["mu"],
            "n_paths": raw["n_paths"],
            "raw_columns": raw["n_columns"],
            "compressed_columns": fast["n_columns"],
            "raw_seconds": raw_seconds,
            "optimized_seconds": fast_seconds,
            "speedup": raw_seconds / fast_seconds if fast_seconds else float("inf"),
        }
    return measured


def _table6_suite(seed: int, n_nodes: int = 10, n_trials: int = 10) -> Dict[str, object]:
    """One Table 6 cell (n = 10, d = sqrt(log n)), raw and optimized."""
    raw_improvements: List[int] = []
    fast_improvements: List[int] = []
    raw_seconds = 0.0
    fast_seconds = 0.0
    for trial in range(n_trials):
        trial_seed = spawn_seed(seed, trial)
        for flavour in ("raw", "optimized"):
            trial_rng = random.Random(trial_seed)
            graph = erdos_renyi_connected(
                n_nodes, DEFAULT_EDGE_PROBABILITY, trial_rng
            )
            dimension = DIMENSION_RULES["sqrt_log"](n_nodes, graph)
            dimension = min(dimension, n_nodes - 1, n_nodes // 2)
            boost = agrid(graph, dimension, rng=trial_rng)
            pipeline = _raw_pipeline if flavour == "raw" else _optimized_pipeline
            start = time.perf_counter()
            original = pipeline(graph, boost.placement_original)
            boosted = pipeline(boost.boosted, boost.placement_boosted)
            elapsed = time.perf_counter() - start
            improvement = boosted["mu"] - original["mu"]
            if flavour == "raw":
                raw_improvements.append(improvement)
                raw_seconds += elapsed
            else:
                fast_improvements.append(improvement)
                fast_seconds += elapsed
    return {
        "n_trials": n_trials,
        "improvements": raw_improvements,
        "raw_seconds": raw_seconds,
        "optimized_seconds": fast_seconds,
        "speedup": raw_seconds / fast_seconds if fast_seconds else float("inf"),
        "identical": raw_improvements == fast_improvements,
    }


def test_compression_pipeline_table3(benchmark, bench_seed):
    measured = run_once(benchmark, _table3_suite, bench_seed)

    boosted = measured["boosted"]
    # The boosted Claranet universe is the compressible cell: thousands of
    # paths, a few distinct columns per raw one.
    assert boosted["n_paths"] > 1000
    assert boosted["compressed_columns"] < boosted["raw_columns"] / 2
    assert boosted["speedup"] >= MIN_SPEEDUP, (
        f"end-to-end speedup {boosted['speedup']:.2f}x below the "
        f"{MIN_SPEEDUP}x bar: {boosted}"
    )

    benchmark.extra_info["experiment"] = (
        "Table 3 cell, raw vs compressed+mask-native pipeline"
    )
    benchmark.extra_info["measured"] = {
        label: {key: value for key, value in row.items() if key != "witness"}
        for label, row in measured.items()
    }


def test_compression_pipeline_table6(benchmark, bench_seed):
    measured = run_once(benchmark, _table6_suite, bench_seed)

    assert measured["identical"], "raw and optimized pipelines disagree"
    assert measured["speedup"] > 0
    assert all(delta >= 0 for delta in measured["improvements"])

    benchmark.extra_info["experiment"] = (
        "Table 6 cell (n=10, sqrt(log n)), raw vs compressed+mask-native pipeline"
    )
    benchmark.extra_info["measured"] = measured
