"""Theorem 4.1 and Theorem 5.3/Lemma 5.2 — trees have µ = 1 (or 0 if the
monitor placement is not balanced).

The benchmark measures the exact computation on directed (χ_t) and undirected
(monitor-balanced) trees and asserts the tight values.
"""

from __future__ import annotations

from conftest import run_once

from repro.core.identifiability import mu
from repro.monitors.placement import MonitorPlacement
from repro.monitors.tree_placement import balanced_leaf_placement, chi_t, chi_t_with_missing_leaf
from repro.topology.trees import complete_kary_tree, tree_leaves


def _run_tree_suite() -> dict:
    results = {}
    downward = complete_kary_tree(depth=3, arity=2)
    results["directed_downward"] = mu(downward, chi_t(downward))
    upward = complete_kary_tree(depth=2, arity=3, direction="up")
    results["directed_upward"] = mu(upward, chi_t(upward))
    # Optimality: drop one leaf monitor.
    leaf = sorted(tree_leaves(downward))[0]
    results["directed_missing_leaf"] = mu(downward, chi_t_with_missing_leaf(downward, leaf))
    # Undirected, monitor-balanced.
    undirected = complete_kary_tree(depth=3, arity=2).to_undirected()
    results["undirected_balanced"] = mu(undirected, balanced_leaf_placement(undirected))
    # Undirected, unbalanced (all inputs in one subtree).
    small = complete_kary_tree(depth=2, arity=2).to_undirected()
    unbalanced = MonitorPlacement.of(inputs={"00", "01"}, outputs={"10", "11"})
    results["undirected_unbalanced"] = mu(small, unbalanced)
    return results


def test_theorem_trees(benchmark):
    results = run_once(benchmark, _run_tree_suite)

    assert results["directed_downward"] == 1   # Theorem 4.1
    assert results["directed_upward"] == 1     # Theorem 4.1 (upward case)
    assert results["directed_missing_leaf"] == 0  # optimality of chi_t
    assert results["undirected_balanced"] == 1    # Theorem 5.3
    assert results["undirected_unbalanced"] == 0  # Lemma 5.2

    benchmark.extra_info["experiment"] = "Theorems 4.1 / 5.3, Lemma 5.2 (trees)"
    benchmark.extra_info["measured"] = results
