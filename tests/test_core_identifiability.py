"""Tests for the exact maximal-identifiability computation (Definitions 2.1/2.2)."""

from __future__ import annotations

import itertools

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.identifiability import (
    ConfusablePair,
    find_confusable_pair,
    is_k_identifiable,
    maximal_identifiability,
    maximal_identifiability_detailed,
    mu,
    mu_detailed,
    separability_matrix,
)
from repro.core.separability import verify_k_identifiability_by_separation
from repro.exceptions import IdentifiabilityError
from repro.monitors.placement import MonitorPlacement
from repro.routing.paths import PathSet, enumerate_paths
from repro.topology.lines import line_graph
from repro.topology.random_graphs import erdos_renyi_connected
from repro.monitors.heuristics import mdmp_placement


def toy_pathset() -> PathSet:
    """Four nodes, three paths; node 'd' is on no path."""
    return PathSet(nodes=("a", "b", "c", "d"), paths=(("a", "b"), ("b", "c"), ("a", "c")))


class TestMaximalIdentifiability:
    def test_uncovered_node_forces_zero(self):
        # 'd' lies on no path, so {d} is confusable with the empty set.
        assert maximal_identifiability(toy_pathset()) == 0

    def test_fully_covered_triangle(self):
        pathset = PathSet(nodes=("a", "b", "c"), paths=(("a", "b"), ("b", "c"), ("a", "c")))
        # Each node has a distinct pair of paths; singletons are separable,
        # but {a,b} vs {a,b,c} (and any 2-vs-2) cover all three paths alike.
        assert maximal_identifiability(pathset) == 1

    def test_detailed_result_witness_levels(self):
        result = maximal_identifiability_detailed(toy_pathset())
        assert result.value == 0
        assert result.witness is not None
        assert result.witness.level <= 1
        assert not result.exhausted_search

    def test_detailed_result_exhausted_when_capped(self):
        pathset = PathSet(nodes=("a",), paths=(("a",),))
        result = maximal_identifiability_detailed(pathset, max_size=1)
        assert result.exhausted_search
        assert result.value == 1

    def test_empty_universe_raises(self):
        pathset = toy_pathset()
        with pytest.raises(IdentifiabilityError):
            maximal_identifiability(pathset, nodes=[])

    def test_restricted_universe(self):
        # Ignoring the uncovered node 'd', singletons become separable.
        assert maximal_identifiability(toy_pathset(), nodes=["a", "b", "c"]) == 1

    def test_monotonicity_of_k_identifiability(self):
        pathset = PathSet(nodes=("a", "b", "c"), paths=(("a", "b"), ("b", "c"), ("a", "c")))
        value = maximal_identifiability(pathset)
        for k in range(0, value + 1):
            assert is_k_identifiable(pathset, k)
        assert not is_k_identifiable(pathset, value + 1)

    def test_k_zero_is_always_true(self):
        assert is_k_identifiable(toy_pathset(), 0)

    def test_negative_k_raises(self):
        with pytest.raises(IdentifiabilityError):
            is_k_identifiable(toy_pathset(), -1)

    def test_find_confusable_pair_is_actually_confusable(self):
        pathset = toy_pathset()
        pair = find_confusable_pair(pathset)
        assert pair is not None
        assert pathset.paths_through_set(pair.first) == pathset.paths_through_set(pair.second)
        assert pair.first != pair.second

    def test_confusable_pair_iterates_two_sets(self):
        pair = ConfusablePair(frozenset({"a"}), frozenset({"b", "c"}))
        first, second = pair
        assert first == frozenset({"a"})
        assert pair.level == 2

    def test_separability_matrix_small(self):
        pathset = PathSet(nodes=("a", "b"), paths=(("a",), ("b",), ("a", "b")))
        table = separability_matrix(pathset, 1)
        assert table[(frozenset({"a"}), frozenset({"b"}))] is True

    def test_separability_matrix_bad_size(self):
        with pytest.raises(IdentifiabilityError):
            separability_matrix(toy_pathset(), 0)


class TestAgainstBruteForceDefinition:
    """The fast signature algorithm must agree with the literal definition."""

    @given(seed=st.integers(0, 200))
    @settings(max_examples=15, deadline=None)
    def test_matches_brute_force_on_random_graphs(self, seed):
        graph = erdos_renyi_connected(6, 0.5, rng=seed)
        placement = mdmp_placement(graph, 2)
        pathset = enumerate_paths(graph, placement, "CSP")
        fast = maximal_identifiability(pathset, max_size=4)
        # Brute force from the definition.
        for k in range(0, 5):
            holds, _ = verify_k_identifiability_by_separation(pathset, k)
            if not holds:
                assert fast == k - 1
                break
        else:
            assert fast >= 4

    def test_line_graph_mu_zero(self):
        graph = line_graph(5)
        placement = MonitorPlacement.of(inputs={0}, outputs={4})
        assert mu(graph, placement) == 0

    def test_mu_detailed_reports_paths_and_bound(self):
        graph = line_graph(4)
        placement = MonitorPlacement.of(inputs={0}, outputs={3})
        result = mu_detailed(graph, placement)
        assert result.value == 0
        assert result.witness is not None


class TestMuConvenience:
    def test_mu_with_explicit_max_size(self, directed_grid_3):
        from repro.monitors.grid_placement import chi_g

        placement = chi_g(directed_grid_3)
        assert mu(directed_grid_3, placement, max_size=3) == 2

    def test_mu_accepts_mechanism_string(self, directed_grid_3):
        from repro.monitors.grid_placement import chi_g

        placement = chi_g(directed_grid_3)
        assert mu(directed_grid_3, placement, "CAP-") >= 2


@st.composite
def random_pathsets(draw):
    """Random small PathSets for property testing."""
    n_nodes = draw(st.integers(min_value=2, max_value=6))
    nodes = tuple(range(n_nodes))
    n_paths = draw(st.integers(min_value=1, max_value=6))
    paths = []
    for _ in range(n_paths):
        size = draw(st.integers(min_value=1, max_value=n_nodes))
        subset = draw(st.permutations(list(nodes)))[:size]
        paths.append(tuple(subset))
    return PathSet(nodes=nodes, paths=tuple(paths))


class TestProperties:
    @given(pathset=random_pathsets())
    @settings(max_examples=50, deadline=None)
    def test_mu_bounded_by_universe(self, pathset):
        value = maximal_identifiability(pathset)
        assert 0 <= value <= len(pathset.nodes)

    @given(pathset=random_pathsets())
    @settings(max_examples=50, deadline=None)
    def test_witness_respects_value(self, pathset):
        result = maximal_identifiability_detailed(pathset)
        if result.witness is not None:
            assert result.witness.level == result.value + 1
            assert pathset.paths_through_set(result.witness.first) == \
                pathset.paths_through_set(result.witness.second)

    @given(pathset=random_pathsets())
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_k(self, pathset):
        value = maximal_identifiability(pathset)
        if value >= 1:
            assert is_k_identifiable(pathset, value)
            assert is_k_identifiable(pathset, max(value - 1, 0))

    @given(pathset=random_pathsets(), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_separation_is_symmetric(self, pathset, data):
        nodes = list(pathset.nodes)
        first = frozenset(data.draw(st.sets(st.sampled_from(nodes), max_size=2)))
        second = frozenset(data.draw(st.sets(st.sampled_from(nodes), max_size=2)))
        assert pathset.separates(first, second) == pathset.separates(second, first)

    @given(pathset=random_pathsets())
    @settings(max_examples=40, deadline=None)
    def test_adding_paths_never_decreases_mu(self, pathset):
        """More measurement paths can only help separate node sets."""
        if pathset.n_paths < 2:
            return
        fewer = pathset.restrict_to_paths(range(pathset.n_paths - 1))
        assert maximal_identifiability(pathset) >= maximal_identifiability(fewer)
