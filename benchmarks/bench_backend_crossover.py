"""Satellite sweep calibrating the ``NUMPY_MIN_PATHS = 256`` auto-crossover.

One synthetic certification cell (40 random elements, ``C(40, 3) = 9880``
frontier, no compression so the width under test is the width measured) is
rebuilt and certified at a ladder of path-universe widths spanning the
crossover, once per backend, each under ``kernel="auto"`` — i.e. each
backend runs the execution strategy the auto policy actually gives it
(python → scalar sweep, numpy → block kernel).  Timings include engine
construction, so signature interning is part of the bill exactly as it is
for a real ``resolve_backend`` decision.

Asserted hard at every width: both backends report the **identical**
result.  Asserted soft (generous tolerances, env-overridable): CPython
big-int ops win outright at the bottom of the ladder, numpy wins at the
top — the shape that puts the crossover in between.  The measured ladder
and the empirical crossover width (first width where numpy wins) are
recorded in ``extra_info``; :data:`repro.engine.backends.NUMPY_MIN_PATHS`
documents how to override the constant when a deployment's measurements
disagree.
"""

from __future__ import annotations

import os
import random
import time
from typing import Dict, List, Optional, Tuple

import pytest

from conftest import run_once

from repro.engine.backends import numpy_available
from repro.engine.signatures import SignatureEngine
from repro.utils.tables import format_table

#: Path-universe widths swept, bracketing NUMPY_MIN_PATHS = 256.
WIDTHS = (32, 64, 128, 256, 512, 1024, 4096, 16384)

#: Elements per synthetic cell; C(40, 3) = 9880 size-3 subsets.
N_ELEMENTS = 40

#: Timing repetitions per (width, backend); the minimum is reported.
TIMING_REPEATS = 3

#: Soft-claim tolerance: the winning side must be at least this much
#: faster before the sweep calls the comparison conclusive.
CROSSOVER_TOLERANCE = float(os.environ.get("BENCH_CROSSOVER_TOLERANCE", "1.1"))


def _certify(width: int, backend: str, seed: int) -> Tuple[object, float]:
    rng = random.Random(seed * 1000 + width)
    nodes = [f"e{i}" for i in range(N_ELEMENTS)]
    masks = {
        node: rng.getrandbits(width) | (1 << rng.randrange(width))
        for node in nodes
    }
    best, result = float("inf"), None
    for _ in range(TIMING_REPEATS):
        start = time.perf_counter()
        engine = SignatureEngine(
            nodes, masks, width, backend=backend, compress=False
        )
        result = engine.identifiability(max_size=3, kernel="auto")
        best = min(best, time.perf_counter() - start)
    return result, best


def _crossover_suite(seed: int) -> List[Dict[str, object]]:
    ladder: List[Dict[str, object]] = []
    for width in WIDTHS:
        python_result, python_seconds = _certify(width, "python", seed)
        numpy_result, numpy_seconds = _certify(width, "numpy", seed)
        assert numpy_result == python_result, (width, python_result, numpy_result)
        ladder.append(
            {
                "width": width,
                "mu": python_result.value,
                "python_seconds": python_seconds,
                "numpy_seconds": numpy_seconds,
                "numpy_over_python": numpy_seconds / python_seconds,
            }
        )
    return ladder


def _empirical_crossover(ladder: List[Dict[str, object]]) -> Optional[int]:
    for row in ladder:
        if row["numpy_over_python"] <= 1.0:
            return row["width"]
    return None


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
def test_backend_crossover(benchmark, bench_seed):
    ladder = run_once(benchmark, _crossover_suite, bench_seed)

    # Soft shape claims bracketing NUMPY_MIN_PATHS: big ints win outright at
    # the bottom of the ladder, numpy wins at the top.
    bottom, top = ladder[0], ladder[-1]
    assert bottom["numpy_over_python"] >= CROSSOVER_TOLERANCE, (
        f"width {bottom['width']}: expected CPython big ints to win below "
        f"the crossover, measured {bottom['numpy_over_python']:.2f}x"
    )
    assert top["numpy_over_python"] <= 1 / CROSSOVER_TOLERANCE, (
        f"width {top['width']}: expected numpy to win above the crossover, "
        f"measured {top['numpy_over_python']:.2f}x"
    )

    print()
    print(
        format_table(
            ["|P|", "mu", "python (s)", "numpy (s)", "np/py"],
            [
                [
                    row["width"],
                    row["mu"],
                    row["python_seconds"],
                    row["numpy_seconds"],
                    round(row["numpy_over_python"], 3),
                ]
                for row in ladder
            ],
            title="Backend auto-crossover sweep (NUMPY_MIN_PATHS = 256)",
        )
    )

    benchmark.extra_info["experiment"] = (
        "python/numpy backend crossover sweep (auto kernel, "
        f"{N_ELEMENTS}-element certification cells)"
    )
    benchmark.extra_info["widths"] = list(WIDTHS)
    benchmark.extra_info["empirical_crossover_width"] = _empirical_crossover(
        ladder
    )
    benchmark.extra_info["measured"] = {
        str(row["width"]): row for row in ladder
    }
