"""The paper's primary contribution: exact maximal identifiability, truncated
and local variants, structural upper bounds and separation primitives."""

from repro.core.bounds import (
    BoundReport,
    classify_sources,
    degree_bound,
    delta_hat,
    directed_degree_bound,
    edge_count_bound,
    lemma_3_2_witness,
    lemma_3_4_witness,
    min_degree_bound,
    monitor_count_bound,
    structural_upper_bound,
)
from repro.core.identifiability import (
    ConfusablePair,
    IdentifiabilityResult,
    find_confusable_pair,
    is_k_identifiable,
    maximal_identifiability,
    maximal_identifiability_detailed,
    mu,
    mu_detailed,
    resolve_universe,
    separability_matrix,
)
from repro.core.local import (
    is_locally_k_identifiable,
    local_identifiability_per_node,
    local_maximal_identifiability,
)
from repro.core.separability import (
    inseparable_pairs_of_size,
    path_through_avoiding,
    separating_path,
    verify_k_identifiability_by_separation,
)
from repro.core.truncated import (
    default_truncation_level,
    mu_truncated,
    truncated_identifiability,
    truncated_identifiability_detailed,
    truncation_error_for_graph,
    truncation_error_fraction,
)

__all__ = [
    # bounds
    "BoundReport",
    "classify_sources",
    "degree_bound",
    "delta_hat",
    "directed_degree_bound",
    "edge_count_bound",
    "lemma_3_2_witness",
    "lemma_3_4_witness",
    "min_degree_bound",
    "monitor_count_bound",
    "structural_upper_bound",
    # identifiability
    "ConfusablePair",
    "IdentifiabilityResult",
    "find_confusable_pair",
    "is_k_identifiable",
    "maximal_identifiability",
    "maximal_identifiability_detailed",
    "mu",
    "mu_detailed",
    "resolve_universe",
    "separability_matrix",
    # local
    "is_locally_k_identifiable",
    "local_identifiability_per_node",
    "local_maximal_identifiability",
    # separability
    "inseparable_pairs_of_size",
    "path_through_avoiding",
    "separating_path",
    "verify_k_identifiability_by_separation",
    # truncated
    "default_truncation_level",
    "mu_truncated",
    "truncated_identifiability",
    "truncated_identifiability_detailed",
    "truncation_error_for_graph",
    "truncation_error_fraction",
]
