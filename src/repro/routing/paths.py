"""Measurement-path enumeration and the :class:`PathSet` container.

The identifiability machinery never looks at a path beyond the *set of nodes
it touches*, so :class:`PathSet` stores, for every node ``v``, the bitmask of
indices of paths crossing ``v`` (``P(v)`` in the paper; construction is
delegated to :func:`repro.utils.bitset.masks_from_paths`).  Unions over node
sets — ``P(U)`` — are then single bitwise ORs.  All heavy identifiability
queries go through the :class:`~repro.engine.signatures.SignatureEngine`
exposed by :meth:`PathSet.engine`, which interns these masks once per backend
and shares them across the core, tomography and experiment layers.

Enumeration per mechanism
-------------------------

* **CSP** — all simple paths from every input node to every *different*
  output node (``networkx.all_simple_paths``).
* **CAP⁻** — the CSP paths, plus (a) simple paths from an input node back to
  itself when that node is also an output node, i.e. monitor-anchored simple
  cycles of length >= 2, and (b) simple paths between identical input/output
  nodes routed through the graph.  Walks with repeated interior nodes add no
  new *touch-sets* beyond unions of these (every closed walk decomposes into
  simple cycles and every open walk contains a simple path with the same
  endpoints), so for identifiability this finite family is a faithful
  representative of CAP⁻; DESIGN.md §3 records this substitution.
* **CAP** — CAP⁻ plus the degenerate loop paths (single-node paths) for the
  nodes attached to both an input and an output monitor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import networkx as nx

from repro._typing import AnyGraph, Node, Path
from repro.exceptions import PathExplosionError, RoutingError
from repro.monitors.placement import MonitorPlacement
from repro.routing.mechanisms import RoutingMechanism
from repro.utils.bitset import bits_of, masks_from_paths

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine sits above)
    from repro.engine.signatures import SignatureEngine

#: Paths longer than this (in nodes) are never enumerated unless the caller
#: raises the cutoff explicitly.  ``None`` means "no limit".
DEFAULT_CUTOFF: Optional[int] = None

#: Hard guard against path explosion; the paper itself stops at ~5e6 paths.
DEFAULT_MAX_PATHS = 5_000_000


@dataclass(frozen=True)
class PathSet:
    """An immutable set of measurement paths over a node universe.

    Attributes
    ----------
    nodes:
        The node universe ``V`` whose identifiability is studied (all nodes of
        the topology, monitor-attached or not — monitors are external).
    paths:
        The measurement paths, each an ordered node tuple.
    """

    nodes: Tuple[Node, ...]
    paths: Tuple[Path, ...]
    _node_masks: Dict[Node, int] = field(repr=False, compare=False, default_factory=dict)
    _engines: Dict[str, "SignatureEngine"] = field(
        repr=False, compare=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        try:
            masks = masks_from_paths(self.nodes, self.paths)
        except ValueError as exc:
            raise RoutingError(str(exc)) from exc
        object.__setattr__(self, "_node_masks", masks)
        object.__setattr__(self, "_engines", {})

    # -- basic accessors ---------------------------------------------------
    def __len__(self) -> int:
        return len(self.paths)

    def __iter__(self) -> Iterator[Path]:
        return iter(self.paths)

    @property
    def n_paths(self) -> int:
        """Number of measurement paths ``|P|`` (reported in Tables 3-5)."""
        return len(self.paths)

    @property
    def node_universe(self) -> FrozenSet[Node]:
        """The node set ``V`` as a frozenset."""
        return frozenset(self.nodes)

    def paths_through(self, node: Node) -> int:
        """Bitmask of ``P(v)``, the indices of paths crossing ``node``."""
        try:
            return self._node_masks[node]
        except KeyError as exc:
            raise RoutingError(f"{node!r} is not in the node universe") from exc

    def paths_through_set(self, nodes: Iterable[Node]) -> int:
        """Bitmask of ``P(U) = ∪_{u in U} P(u)``."""
        mask = 0
        for node in nodes:
            mask |= self.paths_through(node)
        return mask

    def path_indices_through(self, node: Node) -> Tuple[int, ...]:
        """The indices (not the bitmask) of paths crossing ``node``."""
        return tuple(bits_of(self.paths_through(node)))

    def touched_nodes(self) -> FrozenSet[Node]:
        """Nodes crossed by at least one measurement path."""
        return frozenset(node for node, mask in self._node_masks.items() if mask)

    def uncovered_nodes(self) -> FrozenSet[Node]:
        """Nodes crossed by no measurement path (these force µ = 0)."""
        return frozenset(node for node, mask in self._node_masks.items() if not mask)

    # -- identifiability primitives ----------------------------------------
    def separates(self, first: Iterable[Node], second: Iterable[Node]) -> bool:
        """True when ``P(U) △ P(W) ≠ ∅`` for ``U = first`` and ``W = second``.

        This is the separation predicate at the heart of Definition 2.1: some
        measurement path touches exactly one of the two node sets.
        """
        return self.paths_through_set(first) != self.paths_through_set(second)

    def separating_paths(
        self, first: Iterable[Node], second: Iterable[Node]
    ) -> Tuple[Path, ...]:
        """The paths witnessing separation (those in the symmetric difference)."""
        diff = self.paths_through_set(first) ^ self.paths_through_set(second)
        return tuple(self.paths[i] for i in bits_of(diff))

    # -- signature engine ---------------------------------------------------
    def engine(self, backend=None) -> "SignatureEngine":
        """The :class:`~repro.engine.signatures.SignatureEngine` over this
        path set's node masks.

        Engines are memoised per resolved backend name, so every consumer of
        the same :class:`PathSet` — the identifiability core, the tomography
        layer, the experiment drivers — shares one interned signature store.
        ``backend`` follows :func:`repro.engine.select_backend` semantics:
        ``None`` defers to the global policy, a name forces that backend, and
        a :class:`~repro.engine.backends.SignatureBackend` instance is used
        as-is (not memoised).
        """
        # Imported lazily: the engine layer sits above routing.
        from repro.engine.backends import SignatureBackend, resolve_backend_name
        from repro.engine.signatures import SignatureEngine

        if isinstance(backend, SignatureBackend):
            return SignatureEngine(self.nodes, self._node_masks, len(self.paths), backend)
        name = resolve_backend_name(backend, len(self.paths))
        cached = self._engines.get(name)
        if cached is None:
            cached = SignatureEngine(self.nodes, self._node_masks, len(self.paths), name)
            self._engines[name] = cached
        return cached

    def restrict_to_paths(self, indices: Sequence[int]) -> "PathSet":
        """A new :class:`PathSet` over the same universe with a subset of paths."""
        selected = tuple(self.paths[i] for i in indices)
        return PathSet(self.nodes, selected)

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"PathSet(|V|={len(self.nodes)}, |P|={len(self.paths)}, "
            f"uncovered={len(self.uncovered_nodes())})"
        )


def _iter_simple_paths(
    graph: AnyGraph,
    source: Node,
    targets: Iterable[Node],
    cutoff: Optional[int],
) -> Iterator[Path]:
    """Yield all simple paths from ``source`` to any of ``targets``.

    All targets are handed to networkx in a single call so the DFS is run
    once per source instead of once per (source, target) pair — the shared
    path prefixes between targets are walked only once, which dominates the
    enumeration cost on dense monitor placements.  Paths from a node to
    itself are excluded (the DLP/cycle cases are handled by the callers).
    """
    target_set = {t for t in targets if t != source}
    if not target_set:
        return
    try:
        for path in nx.all_simple_paths(graph, source, target_set, cutoff=cutoff):
            yield tuple(path)
    except nx.NodeNotFound as exc:  # pragma: no cover - guarded by validate()
        raise RoutingError(str(exc)) from exc


def _monitor_cycles(
    graph: AnyGraph, anchor: Node, cutoff: Optional[int]
) -> Iterator[Path]:
    """Yield simple cycles through ``anchor`` as closed node tuples.

    Used by CAP/CAP⁻ for paths that start and end at the same monitor node.
    A cycle is represented by its node sequence starting and ending at the
    anchor, e.g. ``(a, b, c, a)``.
    """
    if graph.is_directed():
        for successor in graph.successors(anchor):
            if successor == anchor:
                continue
            for path in nx.all_simple_paths(graph, successor, anchor, cutoff=cutoff):
                yield (anchor,) + tuple(path)
    else:
        # Dedup by the canonical *edge* set, not the node set: two genuinely
        # different simple cycles can visit the same nodes in different orders
        # (e.g. (a,b,c,d,a) vs (a,c,b,d,a) in K4) and must both be kept, while
        # a pure reversal traverses the same undirected edges and is
        # suppressed.  A simple cycle never repeats an undirected edge, so a
        # frozenset of unordered endpoint pairs is a faithful canonical form.
        seen: set = set()
        for neighbour in graph.neighbors(anchor):
            for path in nx.all_simple_paths(graph, neighbour, anchor, cutoff=cutoff):
                if len(path) < 3:
                    # (neighbour, anchor) would retrace the same edge.
                    continue
                cycle = (anchor,) + tuple(path)
                key = frozenset(
                    frozenset(pair) for pair in zip(cycle, cycle[1:])
                )
                if key not in seen:
                    seen.add(key)
                    yield cycle


def enumerate_paths(
    graph: AnyGraph,
    placement: MonitorPlacement,
    mechanism: RoutingMechanism | str = RoutingMechanism.CSP,
    cutoff: Optional[int] = DEFAULT_CUTOFF,
    max_paths: int = DEFAULT_MAX_PATHS,
) -> PathSet:
    """Enumerate the measurement paths ``P(G|χ)`` under a routing mechanism.

    Parameters
    ----------
    graph:
        The topology (directed or undirected networkx graph).
    placement:
        The monitor placement ``χ = (m, M)``.
    mechanism:
        One of :class:`RoutingMechanism` (or its string name).  Default CSP.
    cutoff:
        Optional maximum path length in *edges*; ``None`` enumerates all.
    max_paths:
        Guard against explosion; :class:`PathExplosionError` is raised when
        more paths than this would be enumerated (the paper's own exhaustive
        search stops around 5·10⁶ paths).

    Returns
    -------
    PathSet
        The measurement paths over the full node set of ``graph``.
    """
    mechanism = RoutingMechanism.parse(mechanism)
    placement.validate(graph)
    node_universe = tuple(sorted(graph.nodes, key=repr))

    paths: List[Path] = []
    seen: set = set()

    def push(path: Path) -> None:
        if path in seen:
            return
        seen.add(path)
        paths.append(path)
        if len(paths) > max_paths:
            raise PathExplosionError(
                f"more than max_paths={max_paths} measurement paths; "
                "increase the cap or use a smaller topology"
            )

    # Simple input -> output paths with distinct endpoints (all mechanisms).
    # One multi-target traversal per source; see _iter_simple_paths.
    for source in sorted(placement.inputs, key=repr):
        for path in _iter_simple_paths(graph, source, placement.outputs, cutoff):
            push(path)

    if mechanism.allows_cycles:
        # Paths that start and end on the same node which is both an input and
        # an output node: monitor-anchored simple cycles (length >= 2 edges).
        for anchor in sorted(placement.dlp_candidates, key=repr):
            for cycle in _monitor_cycles(graph, anchor, cutoff):
                push(cycle)

    if mechanism.allows_dlp:
        # Degenerate loop paths: the single-node loop m·(vv)·M.
        for anchor in sorted(placement.dlp_candidates, key=repr):
            push((anchor, anchor))

    if not paths:
        raise RoutingError(
            "no measurement path exists for this placement under "
            f"{mechanism.value}; identifiability would be undefined"
        )
    return PathSet(node_universe, tuple(paths))


def path_length_histogram(pathset: PathSet) -> Dict[int, int]:
    """Histogram ``length (in edges) -> count`` of the measurement paths.

    Useful for the reporting layer and the routing-cost discussion of
    Section 9 (fewer/shorter paths means cheaper probing).
    """
    histogram: Dict[int, int] = {}
    for path in pathset.paths:
        length = max(len(path) - 1, 0)
        histogram[length] = histogram.get(length, 0) + 1
    return dict(sorted(histogram.items()))


def count_paths(
    graph: AnyGraph,
    placement: MonitorPlacement,
    mechanism: RoutingMechanism | str = RoutingMechanism.CSP,
    cutoff: Optional[int] = DEFAULT_CUTOFF,
    max_paths: int = DEFAULT_MAX_PATHS,
) -> int:
    """Convenience wrapper returning only ``|P(G|χ)|`` (as in Tables 3-5)."""
    return enumerate_paths(graph, placement, mechanism, cutoff, max_paths).n_paths
