"""PR 10 perf trajectory: the vectorized block-frontier kernel.

Two exhaustive-certification cells on the Table 3 topology (Claranet under
the d-4 log-N Agrid boost), node **and** link universes, every one asserting
**hard bit-parity** between ``kernel="scalar"`` and ``kernel="block"`` —
same µ, same witness, same ``searched_up_to`` and the same
``subsets_enumerated``/``table_entries`` accounting:

* the boosted path universe is restricted to a fixed **probe budget**
  (``PROBE_BUDGET`` seeded sample of the enumerated paths, via
  ``PathSet.restrict_to_paths``) — the regime a deployed monitor actually
  operates in, and the regime the block kernel targets: exhaustive path
  enumeration on the boosted graph yields ~150k distinct path classes,
  where every kernel is memory-bound on 2000-word rows and vectorization
  has nothing to amortise;

* confusable witnesses are excised until the *residual* universe certifies
  up to size 3 with no surviving collision, so the sweep walks the whole
  ``C(n, 3)`` frontier — the batched-union / batched-dominance /
  batched-digest workload the block kernel exists for.

The speedup floor (``BENCH_BLOCK_MIN_SPEEDUP``, default 2.0) is asserted
only when the numpy backend is available — the pure-python ``block_scan``
fallback exists for correctness and API uniformity, not speed; parity is
asserted everywhere.  Unlike the PR-6 sharding cell this needs no extra
cores: the win is vectorization inside one thread.
"""

from __future__ import annotations

import math
import os
import random
import time
from typing import Dict, Optional

from conftest import run_once

from repro.agrid.algorithm import agrid
from repro.engine.backends import numpy_available
from repro.routing.paths import enumerate_paths
from repro.topology import zoo

#: Rows per block-kernel chunk for the measured side.
BLOCK_SIZE = 1024

#: Probe paths kept from the boosted enumeration (seeded sample).
PROBE_BUDGET = 8192

#: Timing repetitions per kernel; the minimum is reported (the deterministic
#: sweep's best-of-N is its intrinsic cost, the rest is scheduler noise).
TIMING_REPEATS = 3

#: Hard floor on the certification-cell speedup, applied only when the numpy
#: backend carries the block ops (the python fallback is a compatibility
#: path, not a fast path).
BLOCK_MIN_SPEEDUP = float(os.environ.get("BENCH_BLOCK_MIN_SPEEDUP", "2.0"))


def _timed(engine, kernel: str, max_size: Optional[int], nodes):
    best, result = float("inf"), None
    for _ in range(TIMING_REPEATS):
        start = time.perf_counter()
        result = engine.identifiability(
            max_size=max_size, nodes=nodes, kernel=kernel, block_size=BLOCK_SIZE
        )
        best = min(best, time.perf_counter() - start)
    return result, best


def _certification_cell(pathset, kind: str) -> Dict[str, object]:
    engine = pathset.engine(
        "numpy" if numpy_available() else None, universe=kind
    )
    # Excise confusable witnesses until the residual universe certifies up
    # to size 3: the timed sweeps then walk the full C(n, 3) frontier.
    residual = list(engine.nodes)
    excision_rounds = 0
    while True:
        probe = engine.identifiability(max_size=3, nodes=residual)
        if probe.witness is None:
            break
        excised = probe.witness.first | probe.witness.second
        residual = [element for element in residual if element not in excised]
        excision_rounds += 1

    scalar, scalar_seconds = _timed(engine, "scalar", 3, residual)
    block, block_seconds = _timed(engine, "block", 3, residual)

    # Hard bit-parity: dataclass equality covers value, witness,
    # searched_up_to and exhausted_search; the accounting must match too.
    assert block == scalar, (scalar, block)
    assert (
        block.stats.subsets_enumerated == scalar.stats.subsets_enumerated
    ), (scalar.stats, block.stats)
    assert block.stats.table_entries == scalar.stats.table_entries, (
        scalar.stats,
        block.stats,
    )
    assert block.stats.kernel == "block", block.stats
    assert block.stats.blocks_evaluated > 0, block.stats

    return {
        "universe": kind,
        "mu": scalar.value,
        "witness": scalar.witness,
        "searched_up_to": scalar.searched_up_to,
        "excision_rounds": excision_rounds,
        "n_elements": len(engine.nodes),
        "n_residual": len(residual),
        "n_words": getattr(engine.backend, "n_words", None),
        "frontier_size_3": math.comb(len(residual), 3),
        "subsets_enumerated": scalar.stats.subsets_enumerated,
        "blocks_evaluated": block.stats.blocks_evaluated,
        "block_rows_pruned": block.stats.block_rows_pruned,
        "scalar_seconds": scalar_seconds,
        "block_seconds": block_seconds,
        "speedup": (
            scalar_seconds / block_seconds if block_seconds else float("inf")
        ),
    }


def _block_kernel_suite(seed: int) -> Dict[str, object]:
    graph = zoo.load("claranet")
    boost4 = agrid(graph, 4, rng=seed)
    full = enumerate_paths(boost4.boosted, boost4.placement_boosted)
    probes = sorted(random.Random(seed).sample(range(full.n_paths), PROBE_BUDGET))
    pathset = full.restrict_to_paths(probes)
    return {
        f"residual_certification_{kind}_d4": _certification_cell(pathset, kind)
        for kind in ("node", "link")
    }


def test_block_kernel_claranet(benchmark, bench_seed):
    measured = run_once(benchmark, _block_kernel_suite, bench_seed)

    for name, cell in measured.items():
        # The certification sweep must actually certify: no collision up to
        # the cap, so the whole C(n, 3) frontier was walked by both kernels.
        assert cell["mu"] == cell["searched_up_to"] == 3, (name, cell)
        assert cell["witness"] is None, (name, cell)
        if numpy_available():
            assert cell["speedup"] >= BLOCK_MIN_SPEEDUP, (
                f"{name}: block kernel speedup {cell['speedup']:.2f}x is "
                f"below the {BLOCK_MIN_SPEEDUP}x bar (tune "
                "BENCH_BLOCK_MIN_SPEEDUP on noisy runners)"
            )

    benchmark.extra_info["experiment"] = (
        "Block-frontier kernel: scalar vs block sweep on Claranet d-4 "
        "residual certification cells (node + link universes, "
        f"{PROBE_BUDGET}-path probe budget)"
    )
    benchmark.extra_info["numpy"] = numpy_available()
    benchmark.extra_info["block_size"] = BLOCK_SIZE
    benchmark.extra_info["probe_budget"] = PROBE_BUDGET
    benchmark.extra_info["speedup_asserted"] = numpy_available()
    benchmark.extra_info["measured"] = measured
