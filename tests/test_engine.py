"""Tests for the signature engine (repro.engine).

The engine must be a drop-in replacement for the naive reference sweep: same
µ, same exhaustion semantics, valid witnesses — on every routing mechanism
and on both backends — plus the keyed pathset cache used by the experiment
drivers.
"""

from __future__ import annotations

import itertools

import pytest

from repro.core.identifiability import (
    maximal_identifiability,
    maximal_identifiability_detailed,
    separability_matrix,
)
from repro.core.local import local_maximal_identifiability
from repro.engine import (
    NUMPY_MIN_PATHS,
    PathSetCache,
    SignatureEngine,
    available_backends,
    cache_stats,
    cached_enumerate_paths,
    clear_pathset_cache,
    numpy_available,
    pathset_cache,
    select_backend,
)
from repro.engine.backends import resolve_backend_name
from repro.exceptions import IdentifiabilityError
from repro.experiments.common import measure_network
from repro.monitors.heuristics import mdmp_placement, random_placement
from repro.monitors.placement import MonitorPlacement
from repro.routing.paths import PathSet, enumerate_paths
from repro.topology.random_graphs import erdos_renyi_connected
from repro.utils.bitset import bits_of

MECHANISMS = ("CSP", "CAP-", "CAP")

#: Seeds for the randomized parity instances — at least 20 per mechanism.
PARITY_SEEDS = tuple(range(20))


# ---------------------------------------------------------------------------
# The pre-refactor naive implementation, kept verbatim as the parity oracle.
# ---------------------------------------------------------------------------

def naive_maximal_identifiability_detailed(pathset, max_size=None, nodes=None):
    """The seed repository's flat ``itertools.combinations`` sweep."""
    universe = (
        tuple(sorted(set(nodes), key=repr)) if nodes is not None else pathset.nodes
    )
    n = len(universe)
    cap = n if max_size is None else max(0, min(max_size, n))
    signatures = {}
    searched = -1
    for size in range(0, cap + 1):
        for subset in itertools.combinations(universe, size):
            signature = pathset.paths_through_set(subset)
            if signature in signatures:
                return {
                    "value": size - 1,
                    "witness": (frozenset(signatures[signature]), frozenset(subset)),
                    "searched_up_to": size,
                    "exhausted": False,
                }
            signatures[signature] = subset
        searched = size
    return {
        "value": cap,
        "witness": None,
        "searched_up_to": searched,
        "exhausted": True,
    }


def random_instance(seed: int, mechanism: str):
    """A small random connected graph, a placement and its path set.

    Every third seed uses a placement with overlapping input/output nodes so
    the CAP⁻ cycle paths and the CAP degenerate loop paths are exercised.
    """
    n_nodes = 5 + seed % 3
    graph = erdos_renyi_connected(n_nodes, 0.5, rng=seed)
    if seed % 3 == 2:
        ordered = sorted(graph.nodes, key=repr)
        placement = MonitorPlacement.of(
            inputs=ordered[:2], outputs=[ordered[1], ordered[-1]]
        )
    elif seed % 2:
        placement = random_placement(graph, 2, 2, rng=seed)
    else:
        placement = mdmp_placement(graph, 2)
    return graph, placement, enumerate_paths(graph, placement, mechanism)


def assert_valid_witness(pathset, result):
    """A reported witness must actually be confusable at level value + 1."""
    witness = result.witness
    assert witness is not None
    assert witness.first != witness.second
    assert pathset.paths_through_set(witness.first) == pathset.paths_through_set(
        witness.second
    )
    assert witness.level == result.value + 1


@pytest.fixture(autouse=True)
def reset_backend_policy():
    """Keep the global backend policy and cache pristine across tests."""
    select_backend("auto")
    yield
    select_backend("auto")
    clear_pathset_cache()


# ---------------------------------------------------------------------------
# Engine vs naive parity
# ---------------------------------------------------------------------------

class TestEngineNaiveParity:
    @pytest.mark.parametrize("mechanism", MECHANISMS)
    @pytest.mark.parametrize("seed", PARITY_SEEDS)
    def test_mu_and_witness_parity(self, seed, mechanism):
        _, _, pathset = random_instance(seed, mechanism)
        naive = naive_maximal_identifiability_detailed(pathset, max_size=4)
        fast = maximal_identifiability_detailed(pathset, max_size=4)
        assert fast.value == naive["value"]
        assert fast.exhausted_search == naive["exhausted"]
        assert fast.searched_up_to == naive["searched_up_to"]
        if naive["witness"] is None:
            assert fast.witness is None
        else:
            assert_valid_witness(pathset, fast)

    @pytest.mark.parametrize("mechanism", MECHANISMS)
    @pytest.mark.parametrize("seed", (0, 3, 7, 11))
    def test_separability_matrix_parity(self, seed, mechanism):
        _, _, pathset = random_instance(seed, mechanism)
        engine_table = separability_matrix(pathset, 2)
        for (first, second), separable in engine_table.items():
            assert separable == pathset.separates(first, second)
        n_subsets = sum(1 for _ in itertools.combinations(pathset.nodes, 2))
        assert len(engine_table) == n_subsets * (n_subsets - 1) // 2

    @pytest.mark.parametrize("seed", (1, 4, 9))
    def test_restricted_universe_parity(self, seed):
        _, _, pathset = random_instance(seed, "CSP")
        restricted = tuple(pathset.nodes[:-1])
        naive = naive_maximal_identifiability_detailed(
            pathset, max_size=3, nodes=restricted
        )
        fast = maximal_identifiability_detailed(pathset, max_size=3, nodes=restricted)
        assert fast.value == naive["value"]
        assert fast.exhausted_search == naive["exhausted"]

    @pytest.mark.parametrize("seed", (2, 5, 8))
    def test_local_identifiability_unchanged(self, seed):
        """The engine-backed local sweep visits subsets in the naive order."""
        _, _, pathset = random_instance(seed, "CSP")
        scope = (pathset.nodes[0],)
        value = local_maximal_identifiability(pathset, scope, max_size=3)
        assert 0 <= value <= 3

    def test_uncovered_node_early_exit(self):
        pathset = PathSet(nodes=("a", "b", "z"), paths=(("a", "b"),))
        result = maximal_identifiability_detailed(pathset)
        assert result.value == 0
        assert result.witness is not None
        assert frozenset() in tuple(result.witness)
        assert frozenset({"z"}) in tuple(result.witness)

    def test_duplicate_signature_fast_path(self):
        # 'b' and 'c' ride exactly the same paths: µ = 0 via the class collapse.
        pathset = PathSet(
            nodes=("a", "b", "c"), paths=(("a", "b", "c"), ("b", "c"))
        )
        result = maximal_identifiability_detailed(pathset)
        assert result.value == 0
        assert set(result.witness) == {frozenset({"b"}), frozenset({"c"})}


# ---------------------------------------------------------------------------
# Engine internals
# ---------------------------------------------------------------------------

class TestSignatureEngine:
    def test_equivalence_classes_group_identical_signatures(self):
        pathset = PathSet(
            nodes=("a", "b", "c", "d"), paths=(("a", "b", "c"), ("b", "c"), ("d",))
        )
        classes = pathset.engine().equivalence_classes()
        as_sets = {frozenset(members) for members in classes}
        assert frozenset({"b", "c"}) in as_sets
        assert frozenset({"a"}) in as_sets
        assert frozenset({"d"}) in as_sets

    def test_engine_is_memoised_per_backend(self):
        pathset = PathSet(nodes=("a", "b"), paths=(("a", "b"), ("a",)))
        assert pathset.engine("python") is pathset.engine("python")

    def test_iter_subset_signatures_matches_combinations_order(self):
        pathset = PathSet(
            nodes=("a", "b", "c", "d"),
            paths=(("a", "b"), ("b", "c"), ("c", "d"), ("a", "d")),
        )
        engine = pathset.engine("python")
        subsets = [s for s, _ in engine.iter_subset_signatures([2, 3])]
        expected = list(itertools.combinations(pathset.nodes, 2)) + list(
            itertools.combinations(pathset.nodes, 3)
        )
        assert subsets == expected
        for subset, key in engine.iter_subset_signatures([2]):
            assert key == pathset.paths_through_set(subset)

    def test_measurement_vector_matches_per_path_scan(self):
        _, _, pathset = random_instance(6, "CSP")
        failed = frozenset(pathset.nodes[:2])
        expected = tuple(
            int(any(node in failed for node in path)) for path in pathset.paths
        )
        assert pathset.engine().measurement_vector(failed) == expected

    def test_empty_universe_raises(self):
        pathset = PathSet(nodes=("a",), paths=(("a",),))
        with pytest.raises(IdentifiabilityError):
            pathset.engine().identifiability(nodes=[])

    def test_unknown_node_raises(self):
        pathset = PathSet(nodes=("a",), paths=(("a",),))
        with pytest.raises(IdentifiabilityError):
            pathset.engine().identifiability(nodes=["ghost"])


# ---------------------------------------------------------------------------
# Backend parity and selection
# ---------------------------------------------------------------------------

needs_numpy = pytest.mark.skipif(not numpy_available(), reason="numpy not installed")


class TestBackends:
    @needs_numpy
    @pytest.mark.parametrize("mechanism", MECHANISMS)
    @pytest.mark.parametrize("seed", (0, 2, 5, 9, 13))
    def test_python_numpy_parity(self, seed, mechanism):
        _, _, pathset = random_instance(seed, mechanism)
        py = pathset.engine("python").identifiability(max_size=4)
        np_result = pathset.engine("numpy").identifiability(max_size=4)
        assert py.value == np_result.value
        assert py.exhausted_search == np_result.exhausted_search
        assert py.searched_up_to == np_result.searched_up_to
        if py.witness is not None:
            assert_valid_witness(pathset, np_result)

    @needs_numpy
    def test_backend_measurement_vector_parity(self):
        _, _, pathset = random_instance(4, "CAP")
        failed = frozenset(pathset.nodes[:2])
        assert pathset.engine("python").measurement_vector(
            failed
        ) == pathset.engine("numpy").measurement_vector(failed)

    @needs_numpy
    def test_backend_classes_parity(self):
        _, _, pathset = random_instance(10, "CSP")
        py_classes = {
            frozenset(c) for c in pathset.engine("python").equivalence_classes()
        }
        np_classes = {
            frozenset(c) for c in pathset.engine("numpy").equivalence_classes()
        }
        assert py_classes == np_classes

    def test_select_backend_roundtrip(self):
        assert select_backend() == "auto"
        assert select_backend("python") == "python"
        assert select_backend() == "python"
        assert resolve_backend_name(None, 10 ** 6) == "python"

    def test_select_backend_rejects_unknown(self):
        with pytest.raises(IdentifiabilityError):
            select_backend("fortran")

    def test_auto_policy_switches_on_path_count(self):
        expected_large = "numpy" if numpy_available() else "python"
        assert resolve_backend_name("auto", NUMPY_MIN_PATHS) == expected_large
        assert resolve_backend_name("auto", NUMPY_MIN_PATHS - 1) == "python"

    def test_available_backends_always_has_python(self):
        assert "python" in available_backends()

    @needs_numpy
    def test_mu_accepts_backend_override(self):
        _, _, pathset = random_instance(3, "CSP")
        assert maximal_identifiability(pathset, backend="numpy") == (
            maximal_identifiability(pathset, backend="python")
        )


# ---------------------------------------------------------------------------
# Pathset cache
# ---------------------------------------------------------------------------

class TestPathSetCache:
    def test_hit_on_equal_content_graph(self):
        cache = PathSetCache()
        graph1 = erdos_renyi_connected(6, 0.5, rng=1)
        graph2 = erdos_renyi_connected(6, 0.5, rng=1)  # distinct object, same content
        placement = mdmp_placement(graph1, 2)
        first = cache.get_or_enumerate(graph1, placement, "CSP")
        second = cache.get_or_enumerate(graph2, placement, "CSP")
        assert first is second
        assert cache.stats().hits == 1
        assert cache.stats().misses == 1

    def test_miss_on_different_mechanism_or_placement(self):
        cache = PathSetCache()
        graph = erdos_renyi_connected(6, 0.5, rng=2)
        placement = mdmp_placement(graph, 2)
        cache.get_or_enumerate(graph, placement, "CSP")
        cache.get_or_enumerate(graph, placement, "CAP-")
        cache.get_or_enumerate(graph, placement.swapped(), "CSP")
        assert cache.stats().misses == 3
        assert cache.stats().hits == 0

    def test_lru_eviction(self):
        cache = PathSetCache(maxsize=1)
        graph = erdos_renyi_connected(6, 0.5, rng=3)
        placement = mdmp_placement(graph, 2)
        cache.get_or_enumerate(graph, placement, "CSP")
        cache.get_or_enumerate(graph, placement, "CAP-")
        assert len(cache) == 1
        cache.get_or_enumerate(graph, placement, "CSP")  # evicted -> re-enumerated
        assert cache.stats().misses == 3

    def test_cached_pathset_shares_engine(self):
        cache = PathSetCache()
        graph = erdos_renyi_connected(6, 0.5, rng=4)
        placement = mdmp_placement(graph, 2)
        first = cache.get_or_enumerate(graph, placement, "CSP")
        second = cache.get_or_enumerate(graph, placement, "CSP")
        assert first.engine("python") is second.engine("python")

    def test_experiment_runner_hits_cache(self):
        """Repeated table rows over one (graph, placement, mechanism) triple
        must enumerate only once."""
        clear_pathset_cache()
        graph = erdos_renyi_connected(7, 0.5, rng=5)
        placement = mdmp_placement(graph, 2)
        before = cache_stats()
        measure_network(graph, placement, "CSP")
        measure_network(graph, placement, "CSP", truncation=2)
        after = cache_stats()
        assert after.misses - before.misses == 1
        assert after.hits - before.hits == 1

    def test_global_cache_clear(self):
        clear_pathset_cache()
        graph = erdos_renyi_connected(6, 0.5, rng=6)
        placement = mdmp_placement(graph, 2)
        cached_enumerate_paths(graph, placement, "CSP")
        assert len(pathset_cache()) == 1
        clear_pathset_cache()
        assert len(pathset_cache()) == 0
        assert cache_stats().hits == 0


# ---------------------------------------------------------------------------
# Bitset satellite
# ---------------------------------------------------------------------------

class TestBitsOf:
    def test_matches_naive_scan(self):
        for mask in (0, 1, 0b1101, 0b101010, (1 << 200) | (1 << 3), (1 << 64) - 1):
            expected = [i for i in range(mask.bit_length()) if mask >> i & 1]
            assert list(bits_of(mask)) == expected

    def test_sparse_huge_mask_is_cheap(self):
        mask = (1 << 100_000) | (1 << 31) | 1
        assert list(bits_of(mask)) == [0, 31, 100_000]

    def test_path_indices_through_uses_sparse_iteration(self):
        pathset = PathSet(nodes=("a", "b"), paths=(("a",), ("b",), ("a", "b")))
        assert pathset.path_indices_through("a") == (0, 2)
        assert pathset.path_indices_through("b") == (1, 2)
