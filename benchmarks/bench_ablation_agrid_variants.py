"""Ablation — Agrid edge-selection variants (Section 9 discussion).

Compares the uniform random edge selection of Algorithm 1 with the two
variants the paper proposes as future work: attaching new links preferentially
to low-degree nodes and attaching them to far-away nodes.  All variants must
raise the minimal degree to d, so all must reach a positive µ; the benchmark
records which variant wins on the quasi-tree zoo network.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.ablation import selector_ablation
from repro.topology.zoo import getnet

N_RUNS = 3


def test_ablation_agrid_variants(benchmark, bench_seed):
    result = run_once(
        benchmark, selector_ablation, getnet(), n_runs=N_RUNS, rng=bench_seed
    )

    assert set(result.cells) == {"uniform", "low_degree", "far_away"}
    for cell in result.cells.values():
        assert cell.min_mu >= 1, f"{cell.variant}: the boost must lift mu above 0"

    benchmark.extra_info["experiment"] = "Ablation: Agrid edge-selection variants"
    benchmark.extra_info["mean_mu"] = {
        name: round(cell.mean_mu, 3) for name, cell in result.cells.items()
    }
    benchmark.extra_info["best_variant"] = result.best_variant()
