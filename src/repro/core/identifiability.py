"""Exact maximal identifiability (Definitions 2.1 and 2.2).

A node universe ``N`` is *k-identifiable* with respect to a path set ``P``
iff for all ``U, W ⊆ N`` with ``U △ W ≠ ∅`` and ``|U|, |W| ≤ k`` it holds that
``P(U) △ P(W) ≠ ∅``.  The *maximal identifiability* µ is the largest such k.

Exact algorithm
---------------

Enumerate node subsets in order of increasing size (including the empty set —
a node crossed by no path is confusable with ∅ and forces µ = 0).  Each
subset's *signature* is the bitmask of the paths it touches.  The first size
``s`` at which a signature collision occurs yields ``µ = s − 1``:

* a collision between subsets of sizes ``s₁ ≤ s₂ = s`` falsifies
  ``s``-identifiability (both sets have size ≤ s and differ);
* no collision occurred among subsets of size < s (they were enumerated
  earlier), so ``(s−1)``-identifiability holds;
* monotonicity (noted after Definition 2.2) does the rest.

The search is capped by the structural bounds of Section 3 (see
:func:`repro.core.bounds.structural_upper_bound`), so the computation is exact
whenever the cap itself is a correct upper bound — which the paper proves for
CSP and CAP⁻ — and otherwise explores up to ``max_size`` subsets.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, Optional, Tuple

from repro._typing import AnyGraph, Node
from repro.exceptions import IdentifiabilityError
from repro.core.bounds import structural_upper_bound
from repro.monitors.placement import MonitorPlacement
from repro.routing.mechanisms import RoutingMechanism
from repro.routing.paths import PathSet, enumerate_paths


@dataclass(frozen=True)
class ConfusablePair:
    """A witness that identifiability fails at level ``max(|U|, |W|)``.

    ``U`` and ``W`` are distinct node sets with identical path sets
    (``P(U) = P(W)``); no measurement can tell the corresponding failure sets
    apart.
    """

    first: FrozenSet[Node]
    second: FrozenSet[Node]

    @property
    def level(self) -> int:
        """The identifiability level this pair falsifies."""
        return max(len(self.first), len(self.second))

    def __iter__(self) -> Iterator[FrozenSet[Node]]:
        return iter((self.first, self.second))


@dataclass(frozen=True)
class IdentifiabilityResult:
    """Outcome of a maximal-identifiability computation.

    Attributes
    ----------
    value:
        The computed µ.  When ``exhausted_search`` is False this is exact;
        otherwise it is a certified lower bound (identifiability holds at this
        level but the search stopped before finding a failure).
    witness:
        The confusable pair proving ``µ < value + 1``, when one was found.
    searched_up_to:
        The largest subset size whose subsets were fully enumerated.
    exhausted_search:
        True when the search hit its size cap without finding a collision.
    """

    value: int
    witness: Optional[ConfusablePair]
    searched_up_to: int
    exhausted_search: bool

    def __int__(self) -> int:
        return self.value


def _subsets_of_size(nodes: Tuple[Node, ...], size: int) -> Iterator[Tuple[Node, ...]]:
    return itertools.combinations(nodes, size)


def maximal_identifiability_detailed(
    pathset: PathSet,
    max_size: Optional[int] = None,
    nodes: Optional[Iterable[Node]] = None,
) -> IdentifiabilityResult:
    """Compute µ with full diagnostics.

    Parameters
    ----------
    pathset:
        The measurement paths.
    max_size:
        Cap on the subset size explored.  ``None`` means ``|V|`` (fully
        exhaustive).  When the cap is reached without a collision the result
        reports ``exhausted_search=True`` and ``value = max_size``.
    nodes:
        Restrict the universe to these nodes (defaults to the pathset's node
        universe).  Used by the local-identifiability and what-if analyses.
    """
    universe: Tuple[Node, ...] = (
        tuple(sorted(set(nodes), key=repr)) if nodes is not None else pathset.nodes
    )
    if not universe:
        raise IdentifiabilityError("the node universe is empty")
    n = len(universe)
    cap = n if max_size is None else max(0, min(max_size, n))

    signatures: Dict[int, Tuple[Node, ...]] = {}
    searched = -1
    for size in range(0, cap + 1):
        for subset in _subsets_of_size(universe, size):
            signature = pathset.paths_through_set(subset)
            if signature in signatures:
                witness = ConfusablePair(
                    frozenset(signatures[signature]), frozenset(subset)
                )
                return IdentifiabilityResult(
                    value=size - 1,
                    witness=witness,
                    searched_up_to=size,
                    exhausted_search=False,
                )
            signatures[signature] = subset
        searched = size
    return IdentifiabilityResult(
        value=cap, witness=None, searched_up_to=searched, exhausted_search=True
    )


def maximal_identifiability(
    pathset: PathSet,
    max_size: Optional[int] = None,
    nodes: Optional[Iterable[Node]] = None,
) -> int:
    """µ of the node universe with respect to ``pathset`` (Definition 2.2)."""
    return maximal_identifiability_detailed(pathset, max_size, nodes).value


def is_k_identifiable(
    pathset: PathSet, k: int, nodes: Optional[Iterable[Node]] = None
) -> bool:
    """Definition 2.1: is the node universe k-identifiable w.r.t. ``pathset``?

    ``k = 0`` is vacuously true.
    """
    if k < 0:
        raise IdentifiabilityError(f"k must be >= 0, got {k}")
    if k == 0:
        return True
    result = maximal_identifiability_detailed(pathset, max_size=k, nodes=nodes)
    return result.value >= k


def find_confusable_pair(
    pathset: PathSet, max_size: Optional[int] = None, nodes: Optional[Iterable[Node]] = None
) -> Optional[ConfusablePair]:
    """Smallest confusable pair (the witness of Section 2.0.1), if any."""
    return maximal_identifiability_detailed(pathset, max_size, nodes).witness


def mu(
    graph: AnyGraph,
    placement: MonitorPlacement,
    mechanism: RoutingMechanism | str = RoutingMechanism.CSP,
    max_size: Optional[int] = None,
    cutoff: Optional[int] = None,
    max_paths: Optional[int] = None,
) -> int:
    """End-to-end convenience: µ(G|χ) under a routing mechanism.

    Enumerates ``P(G|χ)``, derives the structural search cap of Section 3 and
    runs the exact computation.  ``max_size`` overrides the cap (useful for
    CAP, where the degree bounds do not apply).
    """
    return mu_detailed(
        graph, placement, mechanism, max_size=max_size, cutoff=cutoff, max_paths=max_paths
    ).value


def mu_detailed(
    graph: AnyGraph,
    placement: MonitorPlacement,
    mechanism: RoutingMechanism | str = RoutingMechanism.CSP,
    max_size: Optional[int] = None,
    cutoff: Optional[int] = None,
    max_paths: Optional[int] = None,
) -> IdentifiabilityResult:
    """Like :func:`mu` but returning the full :class:`IdentifiabilityResult`."""
    mechanism = RoutingMechanism.parse(mechanism)
    kwargs = {}
    if cutoff is not None:
        kwargs["cutoff"] = cutoff
    if max_paths is not None:
        kwargs["max_paths"] = max_paths
    pathset = enumerate_paths(graph, placement, mechanism, **kwargs)
    if max_size is None:
        bound = structural_upper_bound(graph, placement, mechanism)
        # Searching one level above the structural bound both confirms the
        # bound (a collision must exist there under CSP/CAP⁻) and keeps the
        # computation exact.
        max_size = bound.combined + 1
    return maximal_identifiability_detailed(pathset, max_size=max_size)


def separability_matrix(
    pathset: PathSet, size: int
) -> Dict[Tuple[FrozenSet[Node], FrozenSet[Node]], bool]:
    """Explicit separation table for all pairs of node sets of a given size.

    Mainly a debugging/teaching aid (and used by small-scale tests): maps each
    unordered pair ``{U, W}`` of distinct subsets of the given size to whether
    a measurement path separates them.  Grows combinatorially — callers are
    expected to use it on small universes only.
    """
    if size < 1:
        raise IdentifiabilityError(f"size must be >= 1, got {size}")
    subsets = [frozenset(c) for c in itertools.combinations(pathset.nodes, size)]
    table: Dict[Tuple[FrozenSet[Node], FrozenSet[Node]], bool] = {}
    for i, first in enumerate(subsets):
        for second in subsets[i + 1 :]:
            table[(first, second)] = pathset.separates(first, second)
    return table
