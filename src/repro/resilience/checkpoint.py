"""Checkpoint/resume for trial batches: an append-only JSONL journal.

A :class:`CheckpointJournal` lives in a user-chosen directory (``--checkpoint
dir/``) and streams one JSON line per completed trial: a content-addressed
key (the SHA-256 fingerprint of the trial's function and arguments — the
spec carries the trial seed, so the key *is* the (spec-fingerprint,
trial-seed) pair), a human-readable label, and the pickled trial value.
Rerunning the same invocation skips every journaled key and restores the
recorded value, so an interrupted batch resumes where it stopped and a
completed batch replays for free.

Durability: every record is written as one line followed by ``flush`` +
``fsync``, and the loader tolerates a truncated final line (the one write a
crash can interrupt).  The journal metadata file is written with the same
temp-file + ``os.replace`` pattern as the runner's ``--output``.

Values are pickled (base64 in the JSON line) rather than JSON-encoded so a
restored value round-trips **bit-identically** — Monte-Carlo trial values are
arbitrary Python objects (ints, report dataclasses, tuples) and a JSON
round-trip would silently change their types.  Everything that reaches the
journal already crossed a process-pool boundary, so picklability is given.

The ambient journal (``checkpoint_scope`` / ``active_checkpoint``) lets the
runner arm checkpointing for a whole invocation — ``--spec`` batches,
Monte-Carlo table sections and ``--churn`` replays — without threading a
parameter through every driver signature.
"""

from __future__ import annotations

import base64
import contextlib
import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from typing import Any, Callable, Dict, Iterator, Mapping, Optional, Tuple

from repro.exceptions import ExperimentError

#: Journal format version, recorded in ``meta.json``.
JOURNAL_FORMAT = 1


def _canonical(obj: Any) -> Any:
    """A JSON-stable projection of a trial argument for fingerprinting.

    Dataclasses with a ``to_dict`` (``ScenarioSpec``, ``EngineConfig``, ...)
    contribute their serialised form, so a fingerprint survives process
    restarts and never depends on ``id()``/``hash()`` (the latter is salted
    per process).
    """
    to_dict = getattr(obj, "to_dict", None)
    if callable(to_dict) and dataclasses.is_dataclass(obj):
        return {"__type__": type(obj).__name__, "value": to_dict()}
    if isinstance(obj, (list, tuple)):
        return [_canonical(item) for item in obj]
    if isinstance(obj, Mapping):
        return {str(key): _canonical(value) for key, value in sorted(obj.items(), key=lambda item: str(item[0]))}
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return repr(obj)


def fingerprint_call(
    func: Callable[..., Any], args: Tuple, kwargs: Dict[str, Any]
) -> str:
    """SHA-256 fingerprint of one trial call (function + arguments)."""
    payload = {
        "func": f"{func.__module__}.{func.__qualname__}",
        "args": _canonical(args),
        "kwargs": _canonical(kwargs),
    }
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def fingerprint_payload(payload: Any) -> str:
    """SHA-256 fingerprint of an arbitrary JSON-stable payload (used by the
    ``--churn`` replay, whose unit of work is a step, not a trial call)."""
    encoded = json.dumps(
        _canonical(payload), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def _write_atomic(path: str, text: str) -> None:
    """Temp-file + ``os.replace`` write (the ``--output`` pattern)."""
    directory = os.path.dirname(path) or "."
    descriptor, temp_path = tempfile.mkstemp(
        dir=directory, prefix=".checkpoint-", suffix=".tmp"
    )
    try:
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(temp_path, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(temp_path)
        raise


class CheckpointJournal:
    """Append-only JSONL journal of completed trial values.

    ``reused`` counts restores and ``recorded`` counts appends made through
    this instance — the runner reports both so smoke tests can assert the
    journal-skip count on resume.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.path = os.path.join(directory, "journal.jsonl")
        meta_path = os.path.join(directory, "meta.json")
        if not os.path.exists(meta_path):
            _write_atomic(
                meta_path, json.dumps({"format": JOURNAL_FORMAT}) + "\n"
            )
        self._entries: Dict[str, str] = {}
        self._handle = None
        self.reused = 0
        self.recorded = 0
        self._load()

    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # A crash can truncate at most the final line; tolerate
                    # it (that trial simply reruns) but refuse journals whose
                    # *interior* is corrupt — those were not written by us.
                    continue
                if not isinstance(record, dict) or "key" not in record:
                    raise ExperimentError(
                        f"malformed checkpoint record in {self.path}: {line!r}"
                    )
                self._entries[record["key"]] = record["value"]

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def restore(self, key: str) -> Any:
        """Unpickle and return the journaled value for ``key``."""
        encoded = self._entries[key]
        value = pickle.loads(base64.b64decode(encoded))
        self.reused += 1
        return value

    def record(self, key: str, value: Any, label: str = "") -> None:
        """Append one completed trial; durable once this returns."""
        if key in self._entries:
            return
        encoded = base64.b64encode(
            pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        ).decode("ascii")
        line = json.dumps(
            {"key": key, "label": label, "value": encoded},
            separators=(",", ":"),
        )
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(line + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._entries[key] = encoded
        self.recorded += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


#: The ambient journal installed by :func:`checkpoint_scope` (``None`` when
#: checkpointing is off — the default).
_ACTIVE: Optional[CheckpointJournal] = None


def active_checkpoint() -> Optional[CheckpointJournal]:
    """The journal armed for the current invocation, if any."""
    return _ACTIVE


@contextlib.contextmanager
def checkpoint_scope(
    journal: Optional[CheckpointJournal],
) -> Iterator[Optional[CheckpointJournal]]:
    """Arm a journal for every ``run_trials`` / churn replay in the block.

    ``None`` leaves checkpointing untouched (safe to nest unconditionally).
    """
    global _ACTIVE
    previous = _ACTIVE
    try:
        if journal is not None:
            _ACTIVE = journal
        yield _ACTIVE
    finally:
        _ACTIVE = previous
        if journal is not None:
            journal.close()
