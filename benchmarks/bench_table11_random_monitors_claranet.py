"""Table 11 — random monitor placements on Claranet vs its Agrid boost.

Paper's shape: over 20 random placements of d input and d output monitors
(d = log N = 3), the µ distribution of G concentrates on {0, 1} while the
distribution of G^A concentrates on 2.  Placement count reduced to 5 for the
benchmark run (the driver accepts the paper's 20).
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.random_monitors import run_table11

N_PLACEMENTS = 5


def test_table11_random_monitors_claranet(benchmark, bench_seed):
    result = run_once(benchmark, run_table11, n_placements=N_PLACEMENTS, rng=bench_seed)

    assert result.n_nodes == 15
    assert result.dimension == 3
    assert result.boosted_dominates
    assert result.original.mean <= 1.0, "the quasi-tree stays at mu <= 1 for random monitors"
    assert result.boosted.mean > result.original.mean

    benchmark.extra_info["table"] = "Table 11 (random monitors, Claranet)"
    benchmark.extra_info["original"] = {str(v): result.original.fraction(v) for v in result.original.support()}
    benchmark.extra_info["boosted"] = {str(v): result.boosted.fraction(v) for v in result.boosted.support()}
