"""Failure-set inference from Boolean end-to-end measurements.

Given a path set and the measurement vector, the consistent failure sets are
exactly the solutions of the Boolean system (Equation 1).  Identifiability is
the statement that, among failure sets of size at most k, the solution is
unique — this module turns that statement into an operational localiser and a
report object used by the examples and the what-if analyses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional, Sequence, Tuple

import itertools

from repro._typing import MeasurementVector, Node
from repro.exceptions import IdentifiabilityError
from repro.failures.universe import FailureUniverse
from repro.routing.paths import PathSet
from repro.tomography.boolean_system import BooleanSystem, measurement_vector
from repro.utils.bitset import mask_from_indices


@dataclass(frozen=True)
class LocalizationResult:
    """Outcome of a localisation attempt.

    Attributes
    ----------
    consistent_sets:
        Every failure set of size ≤ ``max_failures`` consistent with the
        observations, in increasing size order.
    unique:
        True when exactly one consistent set exists — the failure is uniquely
        localised.
    localized_set:
        The unique consistent set when ``unique`` is true, else ``None``.
    max_failures:
        The size bound used for the search.
    """

    consistent_sets: Tuple[FrozenSet[Node], ...]
    max_failures: int

    @property
    def unique(self) -> bool:
        return len(self.consistent_sets) == 1

    @property
    def localized_set(self) -> Optional[FrozenSet[Node]]:
        return self.consistent_sets[0] if self.unique else None

    @property
    def ambiguity(self) -> int:
        """Number of consistent candidate failure sets (1 = unique)."""
        return len(self.consistent_sets)

    def contains_truth(self, true_failure_set: Iterable[Node]) -> bool:
        """Whether the true failure set is among the consistent candidates."""
        truth = frozenset(true_failure_set)
        return truth in self.consistent_sets


def consistent_failure_sets(
    pathset: PathSet,
    observations: Sequence[int],
    max_failures: int,
    universe: Optional[Iterable[Node]] = None,
) -> Tuple[FrozenSet[Node], ...]:
    """All failure sets of size ≤ ``max_failures`` consistent with the observations."""
    system = BooleanSystem.from_measurements(pathset, tuple(observations))
    return tuple(system.solutions(max_failures, universe))


def localize_failures(
    pathset: PathSet,
    observations: Sequence[int],
    max_failures: int,
    universe: Optional[Iterable[Node]] = None,
) -> LocalizationResult:
    """Run the Boolean localiser and report uniqueness/ambiguity."""
    if max_failures < 0:
        raise IdentifiabilityError(f"max_failures must be >= 0, got {max_failures}")
    sets = consistent_failure_sets(pathset, observations, max_failures, universe)
    return LocalizationResult(consistent_sets=sets, max_failures=max_failures)


def consistent_element_sets(
    universe: FailureUniverse,
    observations: Sequence[int],
    max_failures: int,
) -> Tuple[FrozenSet[Node], ...]:
    """All element sets of size ≤ ``max_failures`` consistent with the
    observations, over an arbitrary failure universe.

    The mask-native restatement of :meth:`BooleanSystem.solutions
    <repro.tomography.boolean_system.BooleanSystem.solutions>`: a candidate
    element must touch some failing path and no healthy path, and a candidate
    set is consistent iff the union of its masks covers every failing path.
    For the node universe this enumerates exactly the sets the clause-based
    localiser finds, in the same (size-ascending, repr-sorted) order — the
    parity tests hold it to that.
    """
    if max_failures < 0:
        raise IdentifiabilityError(
            f"max_failures must be >= 0, got {max_failures}"
        )
    if len(observations) != universe.n_paths:
        raise IdentifiabilityError(
            f"expected {universe.n_paths} observations, got {len(observations)}"
        )
    for bit in observations:
        if bit not in (0, 1):
            # Same contract as the clause-based node localiser, which
            # rejects malformed vectors in BooleanEquation.__post_init__.
            raise IdentifiabilityError(
                f"observation must be 0 or 1, got {bit!r}"
            )
    failing = mask_from_indices(
        [i for i, bit in enumerate(observations) if bit]
    )
    healthy = mask_from_indices(
        [i for i, bit in enumerate(observations) if not bit]
    )
    candidates = sorted(
        (
            element
            for element in universe.elements
            if universe.mask(element) & failing
            and not universe.mask(element) & healthy
        ),
        key=repr,
    )
    masks = {element: universe.mask(element) for element in candidates}
    solutions = []
    for size in range(0, max_failures + 1):
        for combo in itertools.combinations(candidates, size):
            covered = 0
            for element in combo:
                covered |= masks[element]
            if covered == failing:
                solutions.append(frozenset(combo))
    return tuple(solutions)


def localize_element_failures(
    universe: FailureUniverse,
    observations: Sequence[int],
    max_failures: int,
) -> LocalizationResult:
    """Run the Boolean localiser over an arbitrary failure universe."""
    sets = consistent_element_sets(universe, observations, max_failures)
    return LocalizationResult(consistent_sets=sets, max_failures=max_failures)


def localization_is_unique(
    pathset: PathSet, failure_set: Iterable[Node], max_failures: Optional[int] = None
) -> bool:
    """Simulate a failure and check whether measurements localise it uniquely.

    ``max_failures`` defaults to ``len(failure_set)``, matching the semantics
    of k-identifiability: among failure sets no larger than the true one, the
    truth is the only consistent explanation.
    """
    failed = frozenset(failure_set)
    bound = len(failed) if max_failures is None else max_failures
    observations = measurement_vector(pathset, failed)
    result = localize_failures(pathset, observations, bound)
    return result.unique and result.localized_set == failed


def identifiability_implies_unique_localization(
    pathset: PathSet, failure_sets: Iterable[Iterable[Node]], k: int
) -> bool:
    """Operational restatement of Definition 2.1 used by tests and examples.

    If the universe is k-identifiable, then every failure set of size ≤ k is
    uniquely localised among candidates of size ≤ k.  This helper checks the
    conclusion for an explicit family of failure sets.
    """
    for failure_set in failure_sets:
        failed = frozenset(failure_set)
        if len(failed) > k:
            raise IdentifiabilityError(
                f"failure set {sorted(map(repr, failed))} exceeds the size bound k={k}"
            )
        if not localization_is_unique(pathset, failed, max_failures=k):
            return False
    return True
