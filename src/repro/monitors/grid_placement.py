"""The grid monitor placement χ_g of Section 4.1 and its d-dimensional
generalisation, plus the corner placement used for undirected hypergrids.

For the directed 2-dimensional grid ``H_n`` (Figure 5)::

    m = {(1,1), ..., (1,n), (2,1), ..., (n,1)}          # first row and first column
    M = {(n,1), ..., (n,n), (1,n), ..., (n-1,n)}        # last row and last column

i.e. input monitors are attached to the two *low* faces (coordinate 1) and
output monitors to the two *high* faces (coordinate n).  The d-dimensional
version attaches inputs to every node with some coordinate equal to 1 and
outputs to every node with some coordinate equal to n, which uses
``2d(n-1) + 2`` monitors as stated in the abstract (corners shared by faces
are counted once per role).

The paper's lower-bound proof gives a special role to the two "complex
sources" (1, n) and (n, 1) (Assumption 4.3); :func:`complex_sources` exposes
them for the routing layer, which never starts a measurement path there.
"""

from __future__ import annotations

from typing import FrozenSet, Tuple

import networkx as nx

from repro.exceptions import MonitorPlacementError, TopologyError
from repro.monitors.placement import MonitorPlacement
from repro.topology.grids import corner_nodes, grid_parameters


def chi_g(grid: nx.DiGraph | nx.Graph) -> MonitorPlacement:
    """The placement χ_g on a hypergrid built by :mod:`repro.topology.grids`.

    Input monitors are attached to every node on a *low* face (some coordinate
    equal to 1) and output monitors to every node on a *high* face (some
    coordinate equal to ``n``).  For d = 2 this is exactly the
    first-row/first-column and last-row/last-column placement of Figure 5,
    which uses 4n − 2 = 2d(n − 1) + 2 monitors (the count quoted in the
    paper's abstract).  For d > 2 the face placement uses
    2·(n^d − (n−1)^d) monitors; it is the placement for which Lemma 3.4 gives
    δ̂ = d and Theorem 4.9 is tight (a smaller, axis-line placement caps the
    degree bound — and hence µ — at 2 regardless of d).
    """
    try:
        n, d = grid_parameters(grid)
    except TopologyError as exc:
        raise MonitorPlacementError(str(exc)) from exc
    inputs = frozenset(node for node in grid.nodes if any(c == 1 for c in node))
    outputs = frozenset(node for node in grid.nodes if any(c == n for c in node))
    placement = MonitorPlacement(inputs, outputs)
    placement.validate(grid)
    return placement


def complex_sources(grid: nx.DiGraph | nx.Graph) -> FrozenSet[Tuple[int, ...]]:
    """Input nodes of χ_g with positive in-degree (the "complex sources" of
    Section 3.2).

    On the directed hypergrid under χ_g every input node except the origin
    ``(1, ..., 1)`` has an incoming edge, so this is ``m \\ {(1, ..., 1)}``.
    The two *corner* complex sources singled out by Assumption 4.3 — (1, n)
    and (n, 1) on the 2-dimensional grid — are the ones attached to both an
    input and an output monitor; they are exposed as
    :func:`assumption_4_3_nodes`.
    """
    placement = chi_g(grid)
    if grid.is_directed():
        return frozenset(
            node for node in placement.inputs if grid.in_degree(node) > 0
        )
    # In the undirected case the notion degenerates to the input nodes that
    # are also output nodes.
    return placement.dlp_candidates


def assumption_4_3_nodes(grid: nx.DiGraph | nx.Graph) -> FrozenSet[Tuple[int, ...]]:
    """The χ_g nodes that may end but never start a measurement path.

    Assumption 4.3: on the 2-dimensional grid these are (1, n) and (n, 1)
    (the green nodes of Figure 5) — exactly the χ_g nodes attached to both an
    input and an output monitor, i.e. the potential DLP nodes that the CAP⁻ /
    CSP mechanisms must not turn into single-node paths.
    """
    return chi_g(grid).dlp_candidates


def simple_sources(grid: nx.DiGraph) -> FrozenSet[Tuple[int, ...]]:
    """Input nodes of χ_g with in-degree 0.

    On the directed hypergrid the unique simple source is the all-ones corner
    (1, ..., 1) ("(1, 1) is the only simple source node", Section 4.1).
    """
    if not grid.is_directed():
        raise MonitorPlacementError("simple_sources requires a directed hypergrid")
    placement = chi_g(grid)
    return frozenset(node for node in placement.inputs if grid.in_degree(node) == 0)


def chi_corners(grid: nx.Graph | nx.DiGraph) -> MonitorPlacement:
    """A 2d-monitor placement on the corners of a hypergrid.

    Theorem 5.4 holds for *any* placement of 2d monitors on the undirected
    ``H_{n,d}``; the MDMP heuristic of Section 7.1 places monitors on minimal
    degree nodes, which on a hypergrid are exactly the corners.  This helper
    picks d corners as inputs and d distinct corners as outputs,
    deterministically (lexicographically smallest corners become inputs,
    largest become outputs) so experiments are reproducible.
    """
    n, d = grid_parameters(grid)
    corners = sorted(corner_nodes(grid))
    if len(corners) < 2 * d:
        raise MonitorPlacementError(
            f"hypergrid has only {len(corners)} corners, cannot place 2d={2*d} monitors"
        )
    inputs = frozenset(corners[:d])
    outputs = frozenset(corners[-d:])
    if inputs & outputs:
        raise MonitorPlacementError("input and output corners overlap; increase n")
    placement = MonitorPlacement(inputs, outputs)
    placement.validate(grid)
    return placement


def reduced_chi_g(grid: nx.DiGraph) -> MonitorPlacement:
    """χ_g with the input links to (1, 2) and (2, 1) removed.

    Section 4.1 ("Optimality of χ_g") shows that removing these two monitors
    — leaving 4n − 5 — makes U = {(1,2),(2,1)} and W = {(1,1)} inseparable, so
    the identifiability drops below 2.  This helper exists so the optimality
    claim can be tested and benchmarked.
    """
    n, d = grid_parameters(grid)
    if d != 2:
        raise MonitorPlacementError("reduced_chi_g is defined for 2-dimensional grids")
    base = chi_g(grid)
    inputs = base.inputs - {(1, 2), (2, 1)}
    return MonitorPlacement(inputs, base.outputs)
