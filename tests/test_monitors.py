"""Tests for monitor placements: the value object, χ_g, χ_t, MDMP and random."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import MonitorPlacementError, TopologyError
from repro.monitors.grid_placement import (
    chi_corners,
    chi_g,
    complex_sources,
    reduced_chi_g,
    simple_sources,
)
from repro.monitors.heuristics import (
    all_pairs_placement,
    degree_extremes_placement,
    mdmp_placement,
    random_placement,
)
from repro.monitors.placement import MonitorPlacement
from repro.monitors.tree_placement import (
    balanced_leaf_placement,
    chi_t,
    chi_t_with_missing_leaf,
    is_monitor_balanced,
    unbalanced_witness,
)
from repro.topology.grids import directed_grid, undirected_hypergrid
from repro.topology.trees import caterpillar_tree, complete_kary_tree
from repro.topology.zoo import claranet, eunetworks


class TestMonitorPlacement:
    def test_basic_properties(self):
        placement = MonitorPlacement.of(inputs={1, 2}, outputs={3})
        assert placement.n_inputs == 2
        assert placement.n_outputs == 1
        assert placement.n_monitors == 3
        assert placement.monitor_nodes == frozenset({1, 2, 3})

    def test_dlp_candidates(self):
        placement = MonitorPlacement.of(inputs={1, 2}, outputs={2, 3})
        assert placement.dlp_candidates == frozenset({2})

    def test_requires_nonempty_sides(self):
        with pytest.raises(MonitorPlacementError):
            MonitorPlacement.of(inputs=set(), outputs={1})
        with pytest.raises(MonitorPlacementError):
            MonitorPlacement.of(inputs={1}, outputs=set())

    def test_validate_against_graph(self):
        graph = nx.path_graph(3)
        placement = MonitorPlacement.of(inputs={0}, outputs={5})
        with pytest.raises(MonitorPlacementError):
            placement.validate(graph)

    def test_swapped(self):
        placement = MonitorPlacement.of(inputs={1}, outputs={2})
        assert placement.swapped().inputs == frozenset({2})

    def test_restricted_to(self):
        graph = nx.path_graph(3)
        placement = MonitorPlacement.of(inputs={0, 9}, outputs={2})
        restricted = placement.restricted_to(graph)
        assert restricted.inputs == frozenset({0})

    def test_restricted_to_failure(self):
        graph = nx.path_graph(3)
        placement = MonitorPlacement.of(inputs={9}, outputs={2})
        with pytest.raises(MonitorPlacementError):
            placement.restricted_to(graph)

    def test_hashable(self):
        a = MonitorPlacement.of(inputs={1}, outputs={2})
        b = MonitorPlacement.of(inputs={1}, outputs={2})
        assert a == b and hash(a) == hash(b)


class TestChiG:
    def test_inputs_and_outputs_cover_low_and_high_faces(self):
        grid = directed_grid(4)
        placement = chi_g(grid)
        assert all(any(c == 1 for c in node) for node in placement.inputs)
        assert all(any(c == 4 for c in node) for node in placement.outputs)

    def test_monitor_count_matches_section_4_1(self):
        # 4n - 2 monitors in the 2-dimensional case.
        grid = directed_grid(4)
        placement = chi_g(grid)
        assert placement.n_monitors == 4 * 4 - 2

    def test_complex_sources_are_all_inputs_but_the_origin(self):
        grid = directed_grid(4)
        placement = chi_g(grid)
        assert complex_sources(grid) == placement.inputs - {(1, 1)}

    def test_assumption_4_3_nodes_are_the_two_corners(self):
        from repro.monitors.grid_placement import assumption_4_3_nodes

        grid = directed_grid(4)
        assert assumption_4_3_nodes(grid) == frozenset({(1, 4), (4, 1)})

    def test_simple_source_is_origin(self):
        grid = directed_grid(4)
        assert simple_sources(grid) == frozenset({(1, 1)})

    def test_reduced_chi_g_removes_two_inputs(self):
        grid = directed_grid(4)
        full = chi_g(grid)
        reduced = reduced_chi_g(grid)
        assert full.inputs - reduced.inputs == frozenset({(1, 2), (2, 1)})

    def test_reduced_chi_g_requires_dimension_two(self):
        from repro.topology.grids import directed_hypergrid

        with pytest.raises(MonitorPlacementError):
            reduced_chi_g(directed_hypergrid(3, 3))

    def test_chi_g_rejects_non_grid(self):
        with pytest.raises(MonitorPlacementError):
            chi_g(nx.path_graph(4))

    def test_chi_corners_uses_2d_monitors(self):
        grid = undirected_hypergrid(3, 3)
        placement = chi_corners(grid)
        assert placement.n_inputs == 3 and placement.n_outputs == 3
        assert placement.inputs.isdisjoint(placement.outputs)


class TestChiT:
    def test_downward_tree_placement(self):
        tree = complete_kary_tree(2, 2)
        placement = chi_t(tree)
        assert placement.inputs == frozenset({""})
        assert placement.outputs == frozenset({"00", "01", "10", "11"})

    def test_upward_tree_placement(self):
        tree = complete_kary_tree(2, 2, direction="up")
        placement = chi_t(tree)
        assert placement.outputs == frozenset({""})
        assert len(placement.inputs) == 4

    def test_chi_t_rejects_non_tree(self):
        with pytest.raises(MonitorPlacementError):
            chi_t(directed_grid(3))

    def test_missing_leaf_variant(self):
        tree = complete_kary_tree(2, 2)
        placement = chi_t_with_missing_leaf(tree, "00")
        assert "00" not in placement.outputs
        assert len(placement.outputs) == 3

    def test_missing_leaf_requires_a_leaf(self):
        tree = complete_kary_tree(2, 2)
        with pytest.raises(MonitorPlacementError):
            chi_t_with_missing_leaf(tree, "0")


class TestMonitorBalance:
    def test_balanced_leaf_placement_is_balanced(self):
        tree = complete_kary_tree(3, 2).to_undirected()
        placement = balanced_leaf_placement(tree)
        assert is_monitor_balanced(tree, placement)
        assert unbalanced_witness(tree, placement) == {}

    def test_unbalanced_placement_detected(self):
        tree = caterpillar_tree(3, legs=2)
        leaves = [n for n in tree.nodes if tree.degree(n) == 1]
        placement = MonitorPlacement.of(inputs={leaves[0]}, outputs=set(leaves[1:]))
        assert not is_monitor_balanced(tree, placement)
        witness = unbalanced_witness(tree, placement)
        assert witness and witness["input_trees"] < 2

    def test_is_monitor_balanced_rejects_directed(self):
        tree = complete_kary_tree(2, 2)
        placement = chi_t(tree)
        with pytest.raises(TopologyError):
            is_monitor_balanced(tree, placement)

    def test_balanced_leaf_placement_needs_four_leaves(self):
        tiny = nx.path_graph(3)
        with pytest.raises((MonitorPlacementError, TopologyError)):
            balanced_leaf_placement(tiny)


class TestHeuristics:
    def test_mdmp_places_2d_distinct_minimal_degree_nodes(self):
        graph = claranet()
        placement = mdmp_placement(graph, 3)
        assert placement.n_inputs == 3 and placement.n_outputs == 3
        assert placement.inputs.isdisjoint(placement.outputs)
        max_chosen_degree = max(graph.degree(v) for v in placement.monitor_nodes)
        unchosen = set(graph.nodes) - placement.monitor_nodes
        # No unchosen node has strictly smaller degree than every chosen node.
        assert min(graph.degree(v) for v in unchosen) >= min(
            graph.degree(v) for v in placement.monitor_nodes
        )
        assert max_chosen_degree <= max(graph.degree(v) for v in graph.nodes)

    def test_mdmp_is_deterministic(self):
        graph = eunetworks()
        assert mdmp_placement(graph, 3) == mdmp_placement(graph, 3)

    def test_mdmp_budget_check(self):
        with pytest.raises(MonitorPlacementError):
            mdmp_placement(nx.path_graph(3), 2)

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_random_placement_sizes_and_disjointness(self, seed):
        graph = claranet()
        placement = random_placement(graph, 3, 3, rng=seed)
        assert placement.n_inputs == 3 and placement.n_outputs == 3
        assert placement.inputs.isdisjoint(placement.outputs)
        placement.validate(graph)

    def test_random_placement_deterministic_for_seed(self):
        graph = claranet()
        assert random_placement(graph, 2, 2, rng=5) == random_placement(graph, 2, 2, rng=5)

    def test_degree_extremes_placement(self):
        graph = claranet()
        placement = degree_extremes_placement(graph, 2)
        input_degrees = [graph.degree(v) for v in placement.inputs]
        output_degrees = [graph.degree(v) for v in placement.outputs]
        assert max(input_degrees) <= min(output_degrees)

    def test_all_pairs_placement(self):
        graph = nx.path_graph(4)
        placement = all_pairs_placement(graph)
        assert placement.inputs == placement.outputs == frozenset(graph.nodes)
        assert placement.dlp_candidates == frozenset(graph.nodes)
